//! The 2D moment-representation kernel — Algorithm 2 of the paper.
//!
//! The domain is decomposed into *columns* parallel to the y-axis, one
//! thread block per column (Figure 1). Each column is processed bottom-up
//! in tiles of `tile_h` rows; per tile the block
//!
//! 1. reads the moments `{ρ, u, Π}` of the tile rows **and a one-node halo
//!    in x** from global memory (halo re-reads hit the modeled L2, so the
//!    DRAM traffic stays at `M` doubles per node),
//! 2. performs collision in moment space (eq. 10; for MR-R also the
//!    recursive higher-order coefficients, eqs. 12–13),
//! 3. maps to distribution space (eq. 11 / 14) and *streams by scatter*
//!    into a shared-memory sliding window of `tile_h + 2` rows, resolving
//!    wall bounce-back on the fly; populations leaving the column are not
//!    stored — the neighbor column computes them from its own halo,
//! 4. after the implicit block barrier, recomputes the moments of the rows
//!    that just became complete (the two-row write lag) and writes them
//!    back to global memory at the circularly shifted slot for `t + 1`.
//!
//! The in-place global update is protected by the downward circular shift
//! (see [`crate::moment_lattice`]); under the substrate's lockstep tile
//! phases the strict race checker proves no old value is clobbered before
//! its last read.

use crate::boundary::{boundary_nodes, stencil_coords, MacroCache};
use crate::moment_lattice::MomentLattice;
use crate::scheme::MrScheme;
use gpu_sim::exec::{BlockCtx, Kernel, Launch, LaunchStats, PhasedKernel};
use gpu_sim::memory::Tally;
use gpu_sim::{DeviceSpec, Gpu};
use lbm_core::boundary::boundary_node_moments;
use lbm_core::geometry::{Geometry, NodeType};
use lbm_core::kernels::{self, KernelConsts, LaneBlock, LANES, MAX_M, MAX_Q};
use lbm_lattice::moments::Moments;
use lbm_lattice::Lattice;
use std::marker::PhantomData;

/// Pick the largest column width ≤ `max` that divides `nx`.
pub fn pick_column_width(nx: usize, max: usize) -> usize {
    for w in (1..=max.min(nx)).rev() {
        if nx.is_multiple_of(w) {
            return w;
        }
    }
    1
}

struct Mr2dKernel<'a, L: Lattice> {
    /// Moment lattice read at time `t` (equal to `mom_out` for the in-place
    /// circular-shift variant).
    mom_in: &'a MomentLattice,
    /// Moment lattice written at time `t + 1`.
    mom_out: &'a MomentLattice,
    geom: &'a Geometry,
    scheme: &'a MrScheme,
    consts: &'a KernelConsts,
    /// Interior fast-scatter eligibility per node (see
    /// [`crate::boundary::bulk_mask`]).
    bulk: &'a [bool],
    /// The full direction set (2D tiles collide no y-halo rows, so no
    /// segment can mask directions).
    dirs_all: Vec<usize>,
    t: u64,
    col_w: usize,
    tile_h: usize,
    /// Left edge of each block's column: block `b` processes
    /// `[cols[b], cols[b] + col_w)`. The single-device driver passes every
    /// column; the multi-device drivers pass owned subsets (boundary strips
    /// vs interior).
    cols: &'a [usize],
    _l: PhantomData<L>,
}

impl<L: Lattice> PhasedKernel for Mr2dKernel<'_, L> {
    fn name(&self) -> &str {
        match self.scheme {
            MrScheme::Projective => "mr2d-p",
            MrScheme::Recursive(_) => "mr2d-r",
        }
    }

    fn phases(&self) -> usize {
        self.geom.ny / self.tile_h
    }

    fn run_phase(&self, k: usize, ctx: &mut BlockCtx) {
        let nx = self.geom.nx;
        let (w, h) = (self.col_w, self.tile_h);
        let win = h + 2;
        let x0 = self.cols[ctx.block_id];
        let y_lo = k * h;
        let y_hi = y_lo + h;
        let periodic_x = self.geom.periodic[0];

        // --- Collide tile rows + x halo, stream into shared memory. ---
        // Per row, maximal segments of consecutive-index fluid nodes stage
        // their `t`-moments through row spans before the per-node collide +
        // scatter; segments break at solids, non-periodic domain edges, and
        // periodic-x wraps (where `idx` jumps).
        for y in y_lo..y_hi {
            let mut run: Option<(usize, usize, usize)> = None; // (x_first, idx0, len)
            for xi in -1..=(w as i64 + 1) {
                let node = if xi <= w as i64 {
                    let mut xs = x0 as i64 + xi;
                    let in_dom = if xs < 0 || xs >= nx as i64 {
                        periodic_x && {
                            xs = xs.rem_euclid(nx as i64);
                            true
                        }
                    } else {
                        true
                    };
                    in_dom
                        .then(|| {
                            let x = xs as usize;
                            let idx = self.geom.idx(x, y, 0);
                            (!self.geom.node_at(idx).is_solid()).then_some((x, idx))
                        })
                        .flatten()
                } else {
                    None
                };
                match (&mut run, node) {
                    (Some((_, idx0, len)), Some((_, idx))) if idx == *idx0 + *len => *len += 1,
                    (r, node) => {
                        if let Some((xf, idx0, len)) = r.take() {
                            self.collide_segment(ctx, y, x0, xf, idx0, len);
                        }
                        *r = node.map(|(x, idx)| (x, idx, 1));
                    }
                }
            }
        }

        // --- Finalize the rows completed by this tile (two-row lag):    ---
        // --- rows [k·h − 1, k·h + h − 2] have received every population. ---
        // New moments of each maximal fluid run are staged plane-major in
        // scratch and flushed through row spans.
        let f_lo = (y_lo as i64 - 1).max(0) as usize;
        let f_hi = y_lo + h - 1; // exclusive upper bound
        for y in f_lo..f_hi {
            let mut xl = 0;
            while xl < w {
                let idx = self.geom.idx(x0 + xl, y, 0);
                if self.geom.node_at(idx).is_solid() {
                    xl += 1;
                    continue;
                }
                let mut len = 1;
                while xl + len < w && !self.geom.node_at(idx + len).is_solid() {
                    len += 1;
                }
                if self.consts.scalar {
                    let mut f_loc = [0.0f64; MAX_Q];
                    let mut flat = [0.0f64; MAX_M];
                    for j in 0..len {
                        {
                            let sh = ctx.shared();
                            for (i, f) in f_loc[..L::Q].iter_mut().enumerate() {
                                *f = sh[((xl + j) * win + y % win) * L::Q + i];
                            }
                        }
                        let mnew = Moments::from_f::<L>(&f_loc[..L::Q]);
                        mnew.pack::<L>(&mut flat[..L::M]);
                        let scratch = ctx.scratch();
                        for m in 0..L::M {
                            scratch[m * len + j] = flat[m];
                        }
                    }
                } else {
                    // Fused from_f + pack over LANES-node chunks, writing
                    // the SoA scratch rows directly (tail lanes replicate
                    // the run's last node).
                    let mut fl: LaneBlock = [[0.0f64; LANES]; MAX_Q];
                    let mut j0 = 0;
                    while j0 < len {
                        let cnt = LANES.min(len - j0);
                        {
                            let sh = ctx.shared();
                            for l in 0..LANES {
                                let j = j0 + if l < cnt { l } else { cnt - 1 };
                                let base = ((xl + j) * win + y % win) * L::Q;
                                for i in 0..L::Q {
                                    fl[i][l] = sh[base + i];
                                }
                            }
                        }
                        kernels::moments_from_f_lanes::<L>(&fl[..L::Q], ctx.scratch(), len, j0);
                        j0 += LANES;
                    }
                }
                self.mom_out
                    .write_row_from_scratch(ctx, self.t + 1, idx, len, 0);
                xl += len;
            }
        }
    }
}

impl<L: Lattice> Mr2dKernel<'_, L> {
    /// Collide + scatter one maximal segment of consecutive-index fluid
    /// nodes of row `y`: the segment's `t`-moments are staged through row
    /// spans, then each node is collided and streamed into the block's
    /// shared tile exactly as the element-wise path did.
    fn collide_segment(
        &self,
        ctx: &mut BlockCtx,
        y: usize,
        x0: usize,
        x_first: usize,
        idx0: usize,
        len: usize,
    ) {
        self.mom_in.read_row_to_scratch(ctx, self.t, idx0, len, 0);
        if self.consts.scalar {
            // Scalar oracle: the original node-at-a-time unpack → collide →
            // map chain with its strided scratch gather.
            let mut f_star = [0.0f64; MAX_Q];
            let mut flat = [0.0f64; MAX_M];
            for j in 0..len {
                {
                    let scratch = ctx.scratch();
                    for m in 0..L::M {
                        flat[m] = scratch[m * len + j];
                    }
                }
                let m = Moments::unpack::<L>(&flat[..L::M]);
                self.scheme
                    .collide_and_map::<L>(&m, self.consts.tau, &mut f_star[..L::Q]);
                self.scatter_node(ctx, y, x0, x_first + j, &f_star);
            }
            return;
        }
        // Vectorized: unpack + collide + map fused into one chunked pass
        // over the SoA scratch rows (no strided per-node gather). Interior
        // nodes take the branchless fast scatter: their Q destination
        // slots are base(x) + off[i] with off[] constant along the row, so
        // the per-direction geometry lookups, bounds checks, and modulo
        // all hoist out of the store loop. Slow lanes (column edges,
        // boundary-adjacent nodes) fall back to the reference scatter,
        // which writes the same slots.
        let (w, win) = (self.col_w, self.tile_h + 2);
        let mut off = [0i64; MAX_Q];
        for (i, o) in off.iter_mut().enumerate().take(L::Q) {
            let c = L::C[i];
            *o = c[0] as i64 * (win * L::Q) as i64
                + (y as i64 + c[1] as i64).rem_euclid(win as i64) * L::Q as i64
                + i as i64;
        }
        let mut fs: LaneBlock = [[0.0f64; LANES]; MAX_Q];
        let mut f_star = [0.0f64; MAX_Q];
        let mut j0 = 0;
        while j0 < len {
            {
                let scratch = ctx.scratch();
                match self.scheme {
                    MrScheme::Projective => kernels::mr_p_collide_chunk::<L>(
                        scratch,
                        len,
                        j0,
                        self.consts.omega,
                        &self.dirs_all,
                        &mut fs,
                    ),
                    MrScheme::Recursive(basis) => kernels::mr_r_collide_chunk::<L>(
                        scratch,
                        len,
                        j0,
                        self.consts.omega,
                        basis,
                        &self.dirs_all,
                        &mut fs,
                    ),
                }
            }
            let cnt = LANES.min(len - j0);
            for l in 0..cnt {
                let x = x_first + j0 + l;
                if x > x0 && x + 1 < x0 + w && self.bulk[idx0 + j0 + l] {
                    let base = ((x - x0) * win * L::Q) as i64;
                    let shm = ctx.shared();
                    for (i, o) in off.iter().enumerate().take(L::Q) {
                        shm[(base + o) as usize] = fs[i][l];
                    }
                } else {
                    for i in 0..L::Q {
                        f_star[i] = fs[i][l];
                    }
                    self.scatter_node(ctx, y, x0, x, &f_star);
                }
            }
            j0 += LANES;
        }
    }

    /// Stream one node's post-collision populations into the block's shared
    /// tile (push form, halfway bounce-back at solids) — shared verbatim by
    /// the scalar and vectorized collide paths.
    #[inline]
    fn scatter_node(
        &self,
        ctx: &mut BlockCtx,
        y: usize,
        x0: usize,
        x: usize,
        f_star: &[f64; MAX_Q],
    ) {
        let (nx, ny) = (self.geom.nx, self.geom.ny);
        let (w, win) = (self.col_w, self.tile_h + 2);
        let periodic_x = self.geom.periodic[0];
        let xs = x as i64;
        let src_in_col = x >= x0 && x < x0 + w;
        for i in 0..L::Q {
            let c = L::C[i];
            let mut xd = xs + c[0] as i64;
            let yd = y as i64 + c[1] as i64;
            if xd < 0 || xd >= nx as i64 {
                if periodic_x {
                    xd = xd.rem_euclid(nx as i64);
                } else {
                    // Leaves the domain through an x face; the
                    // inlet/outlet kernel rebuilds those nodes.
                    continue;
                }
            }
            if yd < 0 || yd >= ny as i64 {
                continue; // beyond a wall-terminated y face
            }
            let (xd, yd) = (xd as usize, yd as usize);
            let dest = self.geom.node(xd, yd, 0);
            if dest.is_solid() {
                // Halfway bounce-back: the population returns to its
                // source node in the opposite direction (push form).
                if src_in_col {
                    let gain = match dest {
                        NodeType::MovingWall(uw) => self.consts.gains.gain(L::OPP[i], uw),
                        _ => 0.0,
                    };
                    let slot = ((x - x0) * win + y % win) * L::Q + L::OPP[i];
                    ctx.shared()[slot] = f_star[i] + gain;
                }
                continue;
            }
            if xd >= x0 && xd < x0 + w {
                let slot = ((xd - x0) * win + yd % win) * L::Q + i;
                ctx.shared()[slot] = f_star[i];
            }
        }
    }
}

/// Launch the MR column kernel over an explicit set of columns: block `b`
/// processes `[cols[b], cols[b] + col_w)` for all tiles. Reads moments at
/// time `t` from `mom_in` and writes `t + 1` into `mom_out` — the
/// multi-device drivers pass two distinct (shift-0) lattices, since
/// splitting one step across sequential launches would break the in-place
/// circular shift's read-before-clobber ordering. Per-node arithmetic is
/// identical to `MrSim2D::step`, so column subsets compose bitwise.
#[allow(clippy::too_many_arguments)]
pub fn launch_mr2d_columns<L: Lattice>(
    gpu: &Gpu,
    mom_in: &MomentLattice,
    mom_out: &MomentLattice,
    geom: &Geometry,
    scheme: &MrScheme,
    consts: &KernelConsts,
    bulk: &[bool],
    t: u64,
    col_w: usize,
    tile_h: usize,
    cols: &[usize],
) -> LaunchStats {
    assert!(!cols.is_empty(), "no columns to launch");
    assert_eq!(bulk.len(), geom.len(), "bulk mask must cover the domain");
    for &x0 in cols {
        assert!(x0 + col_w <= geom.nx, "column {x0} overruns the domain");
    }
    gpu.launch_lockstep(
        &Launch {
            blocks: cols.len(),
            threads_per_block: (col_w + 2) * tile_h,
            shared_doubles: col_w * (tile_h + 2) * L::Q,
            // Row-span staging: one segment of up to col_w + 2 nodes (the
            // collide loop's halo-extended row), M planes.
            scratch_doubles: L::M * (col_w + 2),
        },
        &Mr2dKernel::<L> {
            mom_in,
            mom_out,
            geom,
            scheme,
            consts,
            bulk,
            dirs_all: kernels::dirs_all::<L>(),
            t,
            col_w,
            tile_h,
            cols,
            _l: PhantomData,
        },
    )
}

/// Launch the moment-space inlet/outlet kernel over `nodes`, rebuilding
/// their `t_next` moments in `mom`. Public for the multi-device drivers.
pub fn launch_mr_bc<L: Lattice>(
    gpu: &Gpu,
    mom: &MomentLattice,
    geom: &Geometry,
    tau: f64,
    t_next: u64,
    nodes: &[(usize, usize, usize)],
    block_size: usize,
) -> LaunchStats {
    assert!(!nodes.is_empty(), "no boundary nodes");
    gpu.launch(
        &Launch::simple(nodes.len().div_ceil(block_size), block_size),
        &MrBcKernel::<L> {
            mom,
            geom,
            tau,
            t_next,
            nodes,
            block_size,
            _l: PhantomData,
        },
    )
}

/// Inlet/outlet kernel for the moment representation: the FD condition is
/// *native* to moment space — the node's new state is written directly as
/// moments.
pub(crate) struct MrBcKernel<'a, L: Lattice> {
    pub mom: &'a MomentLattice,
    pub geom: &'a Geometry,
    pub tau: f64,
    pub t_next: u64,
    pub nodes: &'a [(usize, usize, usize)],
    pub block_size: usize,
    pub _l: PhantomData<L>,
}

impl<L: Lattice> MrBcKernel<'_, L> {
    fn read_macro(&self, ctx: &mut BlockCtx, x: usize, y: usize, z: usize) -> (f64, [f64; 3]) {
        let idx = self.geom.idx(x, y, z);
        let rho = self.mom.read(ctx, self.t_next, idx, 0);
        let mut u = [0.0; 3];
        for (a, ua) in u.iter_mut().enumerate().take(L::D) {
            *ua = self.mom.read(ctx, self.t_next, idx, 1 + a);
        }
        (rho, u)
    }
}

impl<L: Lattice> Kernel for MrBcKernel<'_, L> {
    fn name(&self) -> &str {
        "mr-bc"
    }

    fn run_block(&self, ctx: &mut BlockCtx) {
        let base = ctx.block_id * self.block_size;
        for tid in 0..self.block_size {
            let Some(&(x, y, z)) = self.nodes.get(base + tid) else {
                break;
            };
            let mut cache = MacroCache::new();
            for (sx, sy, sz) in stencil_coords(self.geom, x, y, z) {
                let (rho, u) = self.read_macro(ctx, sx, sy, sz);
                cache.insert((sx, sy, sz), rho, u);
            }
            let m = boundary_node_moments::<L>(self.geom, x, y, z, self.tau, &|qx, qy, qz| {
                cache.lookup(qx, qy, qz)
            });
            let idx = self.geom.idx(x, y, z);
            self.mom.write_moments::<L>(ctx, self.t_next, idx, &m);
        }
    }
}

/// Driver for a 2D moment-representation simulation (MR-P or MR-R).
pub struct MrSim2D<L: Lattice> {
    gpu: Gpu,
    geom: Geometry,
    mom: MomentLattice,
    /// Second lattice for the double-buffered ablation variant; `None` for
    /// the single-lattice circular-shift design of Algorithm 2.
    mom2: Option<MomentLattice>,
    cur: usize,
    scheme: MrScheme,
    tau: f64,
    consts: KernelConsts,
    bulk: Vec<bool>,
    col_w: usize,
    tile_h: usize,
    boundary: Vec<(usize, usize, usize)>,
    t: u64,
    accum: Tally,
    profiler: Option<std::sync::Arc<gpu_sim::profiler::Profiler>>,
    obs: Option<std::sync::Arc<obs::Obs>>,
    monitor: Option<obs::PhysicsMonitor>,
    _l: PhantomData<L>,
}

impl<L: Lattice> MrSim2D<L> {
    /// Build an MR simulation over a channel-type geometry: walls at
    /// `y = 0` and `y = ny−1` are mandatory (the sliding window relies on
    /// them); the x faces may be periodic or inlet/outlet.
    pub fn new(device: DeviceSpec, geom: Geometry, scheme: MrScheme, tau: f64) -> Self {
        Self::with_config(device, geom, scheme, tau, 0, 1, 1)
    }

    /// Full configuration: `col_w` (0 = auto), tile height, and the
    /// circular shift in rows per step (must be ≥ `tile_h − 1`; 0 means
    /// in-place, valid for 1-row tiles under lockstep).
    pub fn with_config(
        device: DeviceSpec,
        geom: Geometry,
        scheme: MrScheme,
        tau: f64,
        col_w: usize,
        tile_h: usize,
        shift_rows: usize,
    ) -> Self {
        assert_eq!(geom.nz, 1, "MrSim2D requires a 2D domain");
        assert_eq!(
            L::REACH,
            1,
            "the MR sliding window requires unit streaming reach"
        );
        assert!(!geom.periodic[1], "MR requires wall-terminated y faces");
        for x in 0..geom.nx {
            assert!(
                geom.node(x, 0, 0).is_solid() && geom.node(x, geom.ny - 1, 0).is_solid(),
                "MR requires walls at y = 0 and y = ny−1"
            );
        }
        let col_w = if col_w == 0 {
            pick_column_width(geom.nx, 32)
        } else {
            col_w
        };
        assert!(geom.nx.is_multiple_of(col_w), "column width must divide nx");
        assert!(
            tile_h >= 1 && geom.ny.is_multiple_of(tile_h),
            "tile height must divide ny"
        );
        assert!(
            shift_rows + 1 >= tile_h,
            "circular shift of {shift_rows} rows cannot protect a {tile_h}-row tile"
        );
        let boundary = boundary_nodes(&geom);
        if !boundary.is_empty() {
            assert!(geom.nx >= 5, "FD boundaries need nx ≥ 5");
        }
        let n = geom.len();
        let pad = (shift_rows + 1) * geom.nx;
        let mom = MomentLattice::new(n, L::M, shift_rows * geom.nx, pad).with_touch_tracking();
        let bulk = crate::boundary::bulk_mask::<L>(&geom);
        let mut sim = MrSim2D {
            gpu: Gpu::new(device),
            geom,
            mom,
            mom2: None,
            cur: 0,
            scheme,
            tau,
            consts: KernelConsts::new::<L>(tau),
            bulk,
            col_w,
            tile_h,
            boundary,
            t: 0,
            accum: Tally::default(),
            profiler: None,
            obs: None,
            monitor: None,
            _l: PhantomData,
        };
        sim.init_with(|_, _, _| (1.0, [0.0; 3]));
        sim
    }

    /// Limit the CPU worker threads backing the substrate.
    pub fn with_cpu_threads(mut self, n: usize) -> Self {
        self.gpu = self.gpu.with_cpu_threads(n);
        self
    }

    /// Run the original per-node scalar kernels instead of the vectorized
    /// SoA chunks. The two paths are bitwise-identical (enforced by
    /// `tests/kernel_equivalence.rs`); the scalar path exists as the
    /// equivalence oracle.
    pub fn with_scalar_kernels(mut self) -> Self {
        self.consts.scalar = true;
        self
    }

    /// Override the minimum launch size dispatched to the worker pool
    /// (see `gpu_sim::Gpu::with_parallel_threshold`); `0` forces pooling
    /// for every multi-block launch.
    pub fn with_parallel_threshold(mut self, items: usize) -> Self {
        self.gpu = self.gpu.with_parallel_threshold(items);
        self
    }

    /// Record every kernel launch into a shared profiler (the substrate's
    /// nvvp/rocprof analog): per-kernel byte counts and B/F.
    pub fn with_profiler(mut self, p: std::sync::Arc<gpu_sim::profiler::Profiler>) -> Self {
        self.profiler = Some(p);
        self
    }

    /// Attach an observability hub: the driver emits a `step` span per
    /// timestep and the device nests kernel/phase spans and publishes
    /// launch metrics under it.
    pub fn with_obs(mut self, obs: std::sync::Arc<obs::Obs>) -> Self {
        self.set_obs(obs);
        self
    }

    /// In-place [`MrSim2D::with_obs`] (the `Simulation` trait surface).
    pub fn set_obs(&mut self, obs: std::sync::Arc<obs::Obs>) {
        self.gpu.set_obs(obs.clone());
        self.obs = Some(obs);
    }

    /// Attach (or clear) the fleet trace context — the job identity the
    /// serve scheduler assigned this simulation. Step and kernel spans
    /// carry its args from now on; stepping and tallies are unaffected.
    pub fn set_trace_ctx(&mut self, ctx: Option<obs::TraceCtx>) {
        self.gpu.set_trace_ctx(ctx);
    }

    /// Attach a physics monitor sampling the macroscopic fields every
    /// `cfg.cadence` steps (mass/momentum/max-|u|/NaN guards).
    pub fn with_monitor(mut self, cfg: obs::MonitorConfig) -> Self {
        self.monitor = Some(obs::PhysicsMonitor::new(cfg));
        self
    }

    /// The attached physics monitor, if any.
    pub fn monitor(&self) -> Option<&obs::PhysicsMonitor> {
        self.monitor.as_ref()
    }

    /// Enable strict race checking on the moment lattice (tests). Must be
    /// called before the first step.
    pub fn with_racecheck_strict(mut self) -> Self {
        assert_eq!(self.t, 0, "attach the race checker before stepping");
        let dummy = MomentLattice::new(1, L::M, 0, 0);
        let old = std::mem::replace(&mut self.mom, dummy);
        self.mom = old.with_racecheck_strict();
        self
    }

    /// Switch to the double-buffered ablation variant: two moment lattices
    /// (`2M` doubles per node — the capacity the paper's §4.1 figures
    /// correspond to) and no circular shifting. Must be called before the
    /// first step.
    pub fn with_double_buffer(mut self) -> Self {
        assert_eq!(self.t, 0, "switch storage before stepping");
        let n = self.geom.len();
        // Rebuild both lattices without shift.
        self.mom = MomentLattice::new(n, L::M, 0, 0).with_touch_tracking();
        self.mom2 = Some(MomentLattice::new(n, L::M, 0, 0).with_touch_tracking());
        self.cur = 0;
        self.init_with(|_, _, _| (1.0, [0.0; 3]));
        self
    }

    /// Switch to the single-lattice **moment twist** variant: parity-indexed
    /// plane storage ([`MomentLattice::with_parity_twist`]) with zero
    /// circular shift and zero padding — exactly `M·8` resident bytes per
    /// node, half the double-buffered ablation and below even the
    /// shift-padded single lattice. Each step's fused moment collide reads
    /// logical moments from the current parity's plane order and writes the
    /// post-collision moments through the `t+1` mapping, i.e. into the same
    /// physical planes in reversed order; the step parity becomes part of
    /// the storage contract and is carried in the checkpoint flavor tag.
    /// Requires the 1-row lockstep tiling (the configuration whose
    /// zero-shift in-place safety the strict race checker proves) and must
    /// be called before the first step.
    pub fn with_twist(mut self) -> Self {
        assert_eq!(self.t, 0, "switch storage before stepping");
        assert!(
            self.mom2.is_none(),
            "the twist replaces the double-buffered ablation, not vice versa"
        );
        assert_eq!(
            self.tile_h, 1,
            "the zero-shift twist requires 1-row lockstep tiles"
        );
        let n = self.geom.len();
        self.mom = MomentLattice::new(n, L::M, 0, 0)
            .with_parity_twist()
            .with_touch_tracking();
        self.init_with(|_, _, _| (1.0, [0.0; 3]));
        self
    }

    /// Whether this driver runs the parity-twist storage variant.
    pub fn is_twist(&self) -> bool {
        self.mom.parity_twist()
    }

    /// Monitor/metric pattern label for this configuration.
    fn pattern_label(&self) -> &'static str {
        if self.mom.parity_twist() {
            "mr2d-twist"
        } else {
            "mr2d"
        }
    }

    #[inline]
    fn lattice_pair(&self) -> (&MomentLattice, &MomentLattice) {
        match &self.mom2 {
            None => (&self.mom, &self.mom),
            Some(m2) => {
                if self.cur == 0 {
                    (&self.mom, m2)
                } else {
                    (m2, &self.mom)
                }
            }
        }
    }

    #[inline]
    fn current_lattice(&self) -> &MomentLattice {
        let (input, _) = self.lattice_pair();
        input
    }

    /// Initialize every node's moments from a macroscopic field (moments
    /// are `{ρ, u, Π_eq}` — an equilibrium start, matching the ST init).
    pub fn init_with(&mut self, field: impl Fn(usize, usize, usize) -> (f64, [f64; 3])) {
        self.t = 0;
        self.cur = 0;
        for idx in 0..self.geom.len() {
            let (x, y, z) = self.geom.coords(idx);
            let (rho, u) = match self.geom.node_at(idx) {
                NodeType::Inlet(u_bc) => (field(x, y, z).0, u_bc),
                NodeType::Outlet(rho_bc) => (rho_bc, field(x, y, z).1),
                _ => field(x, y, z),
            };
            let m = Moments {
                rho,
                u,
                pi: Moments::pi_eq(rho, u, L::D),
            };
            self.current_lattice().set_moments::<L>(0, idx, &m);
        }
        self.accum = Tally::default();
    }

    /// Advance one timestep: the lockstep column kernel, then the boundary
    /// kernel.
    pub fn step(&mut self) {
        let obs = self.obs.clone();
        let _step_span = obs.as_ref().map(|o| {
            let mut args = vec![("t", self.t.to_string())];
            if let Some(ctx) = self.gpu.trace_ctx() {
                ctx.append_args(&mut args);
            }
            o.tracer.span_args("driver", "step", &args)
        });
        let cols: Vec<usize> = (0..self.geom.nx / self.col_w)
            .map(|b| b * self.col_w)
            .collect();
        let mut step_tally = Tally::default();
        let (mom_in, mom_out) = self.lattice_pair();
        let stats = launch_mr2d_columns::<L>(
            &self.gpu,
            mom_in,
            mom_out,
            &self.geom,
            &self.scheme,
            &self.consts,
            &self.bulk,
            self.t,
            self.col_w,
            self.tile_h,
            &cols,
        );
        step_tally.merge(&stats.tally);
        if let Some(p) = &self.profiler {
            p.record(&stats, self.geom.fluid_count() as u64);
        }

        if !self.boundary.is_empty() {
            let bs = 64;
            let stats = self.gpu.launch(
                &Launch::simple(self.boundary.len().div_ceil(bs), bs),
                &MrBcKernel::<L> {
                    mom: mom_out,
                    geom: &self.geom,
                    tau: self.tau,
                    t_next: self.t + 1,
                    nodes: &self.boundary,
                    block_size: bs,
                    _l: PhantomData,
                },
            );
            step_tally.merge(&stats.tally);
            if let Some(p) = &self.profiler {
                p.record(&stats, self.boundary.len() as u64);
            }
        }

        self.accum.merge(&step_tally);
        self.t += 1;
        if self.mom2.is_some() {
            self.cur ^= 1;
        }
        self.sample_monitor();
    }

    /// Cadence-gated monitor sampling: field extraction only happens on
    /// sampling steps.
    fn sample_monitor(&mut self) {
        if !self.monitor.as_ref().is_some_and(|m| m.due(self.t)) {
            return;
        }
        let (rho, u) = self.macro_fields();
        let s = self.monitor.as_mut().unwrap().observe(self.t, &rho, &u);
        if let Some(o) = &self.obs {
            let pat = self.pattern_label();
            o.metrics
                .gauge_set("monitor_mass", &[("pattern", pat)], s.mass);
            o.metrics
                .gauge_set("monitor_max_u", &[("pattern", pat)], s.max_u);
            if s.nonfinite > 0 {
                o.tracer.instant(
                    "monitor",
                    "nonfinite",
                    &[
                        ("step", s.step.to_string()),
                        ("count", s.nonfinite.to_string()),
                    ],
                );
            }
        }
    }

    /// Advance `steps` timesteps, then force a final monitor sample so a
    /// run that ends off the sampling cadence still has its tail checked.
    pub fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
        self.finish_monitor();
    }

    /// Force a final monitor sample at the current step (no-op without a
    /// monitor, or when the last step was already sampled). The flushed
    /// sample is published to the hub like any cadence sample, so monitor
    /// series stay gap-free across run ends *and* fleet evictions.
    pub fn finish_monitor(&mut self) {
        if self.monitor.is_none() {
            return;
        }
        let (rho, u) = self.macro_fields();
        let s = self.monitor.as_mut().unwrap().finish(self.t, &rho, &u);
        if let (Some(s), Some(o)) = (s, &self.obs) {
            let pat = self.pattern_label();
            o.metrics
                .gauge_set("monitor_mass", &[("pattern", pat)], s.mass);
            o.metrics
                .gauge_set("monitor_max_u", &[("pattern", pat)], s.max_u);
            o.tracer
                .instant("monitor", "flush", &[("step", s.step.to_string())]);
        }
    }

    /// Mutable access to the physics monitor (recovery rollback).
    pub fn monitor_mut(&mut self) -> Option<&mut obs::PhysicsMonitor> {
        self.monitor.as_mut()
    }

    /// Attach a deterministic fault plan to the device and the moment
    /// storage (see `gpu_sim::FaultPlan`).
    pub fn with_fault_plan(mut self, plan: std::sync::Arc<gpu_sim::FaultPlan>) -> Self {
        self.gpu.set_fault_plan(plan.clone());
        self.mom.set_fault_plan(plan.clone());
        if let Some(m2) = self.mom2.as_mut() {
            m2.set_fault_plan(plan);
        }
        self
    }

    /// FNV-1a fingerprint of the macroscopic fields (bitwise-sensitive).
    pub fn field_checksum(&self) -> u64 {
        let (rho, u) = self.macro_fields();
        lbm_core::io::field_checksum(&rho, &u)
    }

    /// Serialize the full solver state. The moment lattice is snapshotted
    /// *raw* (all slots, untranslated): restoring the same bytes with the
    /// same `t` reproduces the exact circular-shift slot layout, so a
    /// resumed run is bitwise-identical to an uninterrupted one. Covers
    /// both the single-lattice and double-buffered configurations.
    /// Twist runs tag the flavor with the step parity
    /// (`"mr2d-twist+even"` / `"mr2d-twist+odd"`): the plane order is part
    /// of the storage contract, so a restore may only land on the matching
    /// half-cycle.
    pub fn checkpoint(&self) -> Vec<u8> {
        let flavor = if self.is_twist() {
            lbm_core::io::parity_flavor("mr2d-twist", self.t)
        } else {
            "mr2d".to_string()
        };
        let mut w = lbm_core::io::CheckpointWriter::new(&flavor);
        w.put_u64(self.geom.nx as u64)
            .put_u64(self.geom.ny as u64)
            .put_u64(L::M as u64)
            .put_u64(self.mom2.is_some() as u64)
            .put_u64(self.t)
            .put_u64(self.cur as u64)
            .put_u64(self.accum.reads)
            .put_u64(self.accum.writes)
            .put_u64(self.accum.bytes_read)
            .put_u64(self.accum.bytes_written)
            .put_u64(self.accum.dram_bytes_read)
            .put_u64(self.accum.l2_read_hits)
            .put_f64s(&self.mom.host_snapshot());
        if let Some(m2) = &self.mom2 {
            w.put_f64s(&m2.host_snapshot());
        }
        w.finish()
    }

    /// Restore a [`MrSim2D::checkpoint`] snapshot taken on an identically
    /// configured simulation.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), lbm_core::io::CheckpointError> {
        use lbm_core::io::{CheckpointError, CheckpointReader};
        let (mut r, twist_parity) = if self.is_twist() {
            let (r, which) =
                CheckpointReader::open_any(bytes, &["mr2d-twist+even", "mr2d-twist+odd"])?;
            (r, Some(which as u64))
        } else {
            (CheckpointReader::open(bytes, "mr2d")?, None)
        };
        r.expect_u64(self.geom.nx as u64, "nx")?;
        r.expect_u64(self.geom.ny as u64, "ny")?;
        r.expect_u64(L::M as u64, "M")?;
        r.expect_u64(self.mom2.is_some() as u64, "double-buffer flag")?;
        let t = r.take_u64()?;
        if let Some(parity) = twist_parity {
            if t % 2 != parity {
                return Err(CheckpointError::Mismatch(format!(
                    "flavor parity ({}) disagrees with stored step counter {t}",
                    if parity == 0 { "even" } else { "odd" }
                )));
            }
        }
        let cur = r.take_u64()? as usize;
        if cur > 1 {
            return Err(CheckpointError::Mismatch(format!(
                "buffer selector {cur} out of range"
            )));
        }
        self.accum = Tally {
            reads: r.take_u64()?,
            writes: r.take_u64()?,
            bytes_read: r.take_u64()?,
            bytes_written: r.take_u64()?,
            dram_bytes_read: r.take_u64()?,
            l2_read_hits: r.take_u64()?,
        };
        let raw = r.take_f64s(self.mom.raw_len())?;
        self.mom.host_restore(&raw);
        if let Some(m2) = &self.mom2 {
            let raw2 = r.take_f64s(m2.raw_len())?;
            m2.host_restore(&raw2);
        }
        self.t = t;
        self.cur = cur;
        if let Some(m) = self.monitor.as_mut() {
            m.rollback_to(self.t);
        }
        Ok(())
    }

    /// Completed timesteps.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Domain geometry.
    pub fn geom(&self) -> &Geometry {
        &self.geom
    }

    /// The collision scheme.
    pub fn scheme(&self) -> &MrScheme {
        &self.scheme
    }

    /// Column/tile configuration `(column width, tile height)`.
    pub fn config(&self) -> (usize, usize) {
        (self.col_w, self.tile_h)
    }

    /// Aggregate traffic over all steps so far.
    pub fn traffic(&self) -> Tally {
        self.accum
    }

    /// Measured DRAM bytes per fluid lattice update (Table 2's B/F).
    pub fn measured_bpf(&self) -> f64 {
        let updates = self.geom.fluid_count() as u64 * self.t;
        if updates == 0 {
            return 0.0;
        }
        self.accum.dram_bytes() as f64 / updates as f64
    }

    /// Device-memory footprint of the moment storage (one lattice plus
    /// padding, or two for the double-buffered variant).
    pub fn footprint_bytes(&self) -> usize {
        self.mom.size_bytes() + self.mom2.as_ref().map_or(0, |m| m.size_bytes())
    }

    /// Moments of a node at the current time (pre-collision state).
    pub fn moments_at(&self, x: usize, y: usize, z: usize) -> Moments {
        self.current_lattice()
            .get_moments::<L>(self.t, self.geom.idx(x, y, z))
    }

    /// Density and velocity fields in one pass over the moment lattice
    /// (solid nodes report zero). This is what the physics monitor samples.
    pub fn macro_fields(&self) -> (Vec<f64>, Vec<[f64; 3]>) {
        let n = self.geom.len();
        let lat = self.current_lattice();
        let mut rho_out = vec![0.0; n];
        let mut u_out = vec![[0.0; 3]; n];
        for idx in 0..n {
            if self.geom.node_at(idx).is_fluid_like() {
                let m = lat.get_moments::<L>(self.t, idx);
                rho_out[idx] = m.rho;
                u_out[idx] = m.u;
            }
        }
        (rho_out, u_out)
    }

    /// Velocity field (solid nodes report zero).
    pub fn velocity_field(&self) -> Vec<[f64; 3]> {
        self.macro_fields().1
    }

    /// Density field (solid nodes report zero).
    pub fn density_field(&self) -> Vec<f64> {
        self.macro_fields().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbm_core::collision::{Projective, Recursive};
    use lbm_core::Solver;
    use lbm_lattice::D2Q9;

    fn assert_fields_close(
        a: &[[f64; 3]],
        b: &[[f64; 3]],
        ra: &[f64],
        rb: &[f64],
        tol: f64,
        what: &str,
    ) {
        for (i, (ua, ub)) in a.iter().zip(b).enumerate() {
            for k in 0..3 {
                assert!(
                    (ua[k] - ub[k]).abs() < tol,
                    "{what}: u[{i}][{k}] {} vs {}",
                    ua[k],
                    ub[k]
                );
            }
        }
        for (i, (x, y)) in ra.iter().zip(rb).enumerate() {
            assert!((x - y).abs() < tol, "{what}: rho[{i}] {x} vs {y}");
        }
    }

    /// MR-P must reproduce the reference projective solver on a channel —
    /// the moment representation is lossless.
    #[test]
    fn mr_p_matches_reference_channel() {
        let geom = Geometry::channel_2d_poiseuille(16, 8, 0.05);
        let mut mr: MrSim2D<D2Q9> = MrSim2D::new(
            DeviceSpec::v100(),
            geom.clone(),
            MrScheme::projective(),
            0.8,
        )
        .with_cpu_threads(4);
        let mut st: Solver<D2Q9, _> = Solver::new(geom, Projective::new(0.8)).with_threads(2);
        mr.run(20);
        st.run(20);
        assert_fields_close(
            &mr.velocity_field(),
            &st.velocity_field(),
            &mr.density_field(),
            &st.density_field(),
            1e-10,
            "MR-P vs REG-P",
        );
    }

    /// MR-R likewise matches the reference recursive solver.
    #[test]
    fn mr_r_matches_reference_channel() {
        let geom = Geometry::channel_2d(16, 8, 0.04);
        let mut mr: MrSim2D<D2Q9> = MrSim2D::new(
            DeviceSpec::mi100(),
            geom.clone(),
            MrScheme::recursive::<D2Q9>(),
            0.75,
        )
        .with_cpu_threads(4);
        let mut st: Solver<D2Q9, _> =
            Solver::new(geom, Recursive::new::<D2Q9>(0.75)).with_threads(2);
        mr.run(20);
        st.run(20);
        assert_fields_close(
            &mr.velocity_field(),
            &st.velocity_field(),
            &mr.density_field(),
            &st.density_field(),
            1e-10,
            "MR-R vs REG-R",
        );
    }

    /// Periodic-x channel (no boundary kernel): the two representations
    /// agree to strict roundoff, and the circular shift passes the strict
    /// race checker.
    #[test]
    fn periodic_x_equivalence_with_racecheck() {
        let init = |x: usize, y: usize, _z: usize| {
            (
                1.0,
                [
                    0.03 * (y as f64 * 0.5).sin(),
                    0.01 * (x as f64 * 0.7).cos(),
                    0.0,
                ],
            )
        };
        let geom = Geometry::walls_y_periodic_x(12, 8);
        let mut mr: MrSim2D<D2Q9> = MrSim2D::new(
            DeviceSpec::v100(),
            geom.clone(),
            MrScheme::projective(),
            0.9,
        )
        .with_cpu_threads(4)
        .with_racecheck_strict();
        mr.init_with(init);
        let mut st: Solver<D2Q9, _> = Solver::new(geom, Projective::new(0.9)).with_threads(2);
        st.init_with(init);
        mr.run(15);
        st.run(15);
        assert_fields_close(
            &mr.velocity_field(),
            &st.velocity_field(),
            &mr.density_field(),
            &st.density_field(),
            1e-12,
            "periodic-x",
        );
    }

    /// Measured B/F reproduces Table 2: 2M·8 = 96 for D2Q9 (halo re-reads
    /// are L2 hits, not DRAM).
    #[test]
    fn measured_bpf_matches_table2() {
        let geom = Geometry::walls_y_periodic_x(32, 16);
        let mut mr: MrSim2D<D2Q9> =
            MrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8).with_cpu_threads(2);
        mr.run(3);
        let bpf = mr.measured_bpf();
        assert!((bpf - 96.0).abs() < 2.0, "B/F = {bpf}");
    }

    /// The single-lattice footprint beats ST's two lattices by far more
    /// than the paper's 33 % (Algorithm 2 stores M, not 2M, doubles).
    #[test]
    fn footprint_is_single_lattice() {
        let geom = Geometry::walls_y_periodic_x(32, 16);
        let mr: MrSim2D<D2Q9> = MrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8);
        let st_bytes = 2 * 9 * 32 * 16 * 8;
        assert!(mr.footprint_bytes() < st_bytes / 2);
    }

    /// Tile heights > 1 produce identical physics (the sliding window and
    /// shift generalize) and stay race-free.
    #[test]
    fn taller_tiles_match_reference() {
        let geom = Geometry::walls_y_periodic_x(12, 8);
        let init =
            |_x: usize, y: usize, _z: usize| (1.0, [0.02 * (y as f64 * 0.9).sin(), 0.0, 0.0]);
        let mut mr: MrSim2D<D2Q9> = MrSim2D::with_config(
            DeviceSpec::v100(),
            geom.clone(),
            MrScheme::projective(),
            0.8,
            4, // col_w
            2, // tile_h
            2, // shift_rows ≥ tile_h − 1
        )
        .with_cpu_threads(4)
        .with_racecheck_strict();
        mr.init_with(init);
        let mut st: Solver<D2Q9, _> = Solver::new(geom, Projective::new(0.8)).with_threads(2);
        st.init_with(init);
        mr.run(10);
        st.run(10);
        assert_fields_close(
            &mr.velocity_field(),
            &st.velocity_field(),
            &mr.density_field(),
            &st.density_field(),
            1e-12,
            "tile_h=2",
        );
    }

    /// In-place update (shift 0) is also safe under lockstep with 1-row
    /// tiles — the ablation baseline.
    #[test]
    fn inplace_no_shift_is_lockstep_safe() {
        let geom = Geometry::walls_y_periodic_x(12, 8);
        let mut mr: MrSim2D<D2Q9> = MrSim2D::with_config(
            DeviceSpec::v100(),
            geom,
            MrScheme::projective(),
            0.8,
            4,
            1,
            0, // in-place
        )
        .with_cpu_threads(4)
        .with_racecheck_strict();
        mr.init_with(|_, y, _| (1.0, [0.02 * (y as f64).sin(), 0.0, 0.0]));
        mr.run(5); // the race checker panics on any violation
        assert!(mr.velocity_field().iter().all(|u| u[0].is_finite()));
    }

    #[test]
    #[should_panic(expected = "wall-terminated y")]
    fn rejects_missing_walls() {
        let geom = Geometry::periodic_2d(8, 8);
        let _ = MrSim2D::<D2Q9>::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8);
    }

    #[test]
    fn column_width_picker() {
        assert_eq!(pick_column_width(64, 32), 32);
        assert_eq!(pick_column_width(48, 32), 24);
        assert_eq!(pick_column_width(7, 32), 7);
        assert_eq!(pick_column_width(13, 4), 1);
    }

    /// The double-buffered ablation variant produces the identical
    /// trajectory at twice the footprint.
    #[test]
    fn double_buffer_matches_single() {
        let init = |x: usize, y: usize, _z: usize| {
            (
                1.0,
                [
                    0.02 * (y as f64 * 0.7).sin(),
                    0.01 * (x as f64 * 0.5).cos(),
                    0.0,
                ],
            )
        };
        let geom = Geometry::walls_y_periodic_x(16, 8);
        let mut single: MrSim2D<D2Q9> = MrSim2D::new(
            DeviceSpec::v100(),
            geom.clone(),
            MrScheme::projective(),
            0.8,
        )
        .with_cpu_threads(2);
        single.init_with(init);
        let mut double: MrSim2D<D2Q9> =
            MrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8)
                .with_cpu_threads(2)
                .with_double_buffer();
        double.init_with(init);
        single.run(12);
        double.run(12);
        let (us, ud) = (single.velocity_field(), double.velocity_field());
        for (a, b) in us.iter().zip(&ud) {
            for k in 0..3 {
                assert_eq!(a[k], b[k], "storage layout changed the arithmetic");
            }
        }
        assert!(double.footprint_bytes() > 2 * single.footprint_bytes() / 2);
        assert!(double.footprint_bytes() >= 2 * 6 * 16 * 8 * 8);
        // Same traffic either way.
        assert!((single.measured_bpf() - double.measured_bpf()).abs() < 1e-9);
    }

    /// Obs integration: step spans nest the lockstep column kernel's phase
    /// spans, and the monitor confirms conservation on the closed channel.
    #[test]
    fn obs_and_monitor_wire_through() {
        let obs = obs::Obs::shared();
        let geom = Geometry::walls_y_periodic_x(16, 8);
        let mut mr: MrSim2D<D2Q9> =
            MrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8)
                .with_cpu_threads(2)
                .with_obs(obs.clone())
                .with_monitor(obs::MonitorConfig {
                    cadence: 4,
                    ..Default::default()
                });
        mr.init_with(|x, y, _| (1.0 + 0.01 * ((x + y) as f64).sin(), [0.0; 3]));
        mr.run(8);
        let ev = obs.tracer.events();
        assert_eq!(
            ev.iter()
                .filter(|e| e.ph == 'B' && e.name == "step")
                .count(),
            8
        );
        // The column kernel is lockstep (phases > 1) → phase spans nested
        // inside its kernel span, and barrier instants between phases.
        assert!(ev.iter().any(|e| e.cat == "phase"));
        assert!(ev.iter().any(|e| e.ph == 'i' && e.name == "barrier"));
        let m = mr.monitor().unwrap();
        assert_eq!(m.samples().len(), 2); // steps 4 and 8
        assert!(m.is_ok(), "{:?}", m.violations());
        assert!(m.mass_drift() <= 1e-10);
    }

    /// Mass conservation on the periodic-x channel.
    #[test]
    fn conserves_mass() {
        let geom = Geometry::walls_y_periodic_x(16, 8);
        let mut mr: MrSim2D<D2Q9> =
            MrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8).with_cpu_threads(2);
        mr.init_with(|x, y, _| (1.0 + 0.01 * ((x + y) as f64).sin(), [0.0; 3]));
        let mass = |s: &MrSim2D<D2Q9>| -> f64 { s.density_field().iter().sum() };
        let m0 = mass(&mr);
        mr.run(20);
        let m1 = mass(&mr);
        assert!((m0 - m1).abs() < 1e-9 * m0, "mass drift {}", m1 - m0);
    }

    /// Executor determinism: identical fields and traffic tally under 1, 3,
    /// and 8 CPU threads — the pool's dynamic block scheduling must be
    /// invisible to both physics and accounting.
    #[test]
    fn executor_determinism_across_thread_counts() {
        let init = |x: usize, y: usize, _z: usize| {
            (
                1.0 + 0.01 * ((x + 2 * y) as f64 * 0.4).sin(),
                [
                    0.02 * (y as f64 * 0.7).sin(),
                    0.01 * (x as f64 * 0.5).cos(),
                    0.0,
                ],
            )
        };
        let run = |threads: usize| {
            let geom = Geometry::walls_y_periodic_x(48, 8);
            // col_w 8 → 6 column blocks, enough for real work stealing.
            let mut sim: MrSim2D<D2Q9> = MrSim2D::with_config(
                DeviceSpec::v100(),
                geom,
                MrScheme::projective(),
                0.8,
                8,
                1,
                1,
            )
            .with_cpu_threads(threads)
            .with_parallel_threshold(0); // force pooled dispatch at any size
            sim.init_with(init);
            sim.run(8);
            (sim.velocity_field(), sim.density_field(), sim.traffic())
        };
        let base = run(1);
        for threads in [3, 8] {
            let got = run(threads);
            assert_eq!(base.0, got.0, "velocity diverges at {threads} threads");
            assert_eq!(base.1, got.1, "density diverges at {threads} threads");
            assert_eq!(base.2, got.2, "tally diverges at {threads} threads");
        }
    }

    /// The correctness contract of the twist variant: the parity-indexed
    /// plane storage changes *where* moments live, never their values —
    /// bitwise equal to the circular-shift driver at every step, odd and
    /// even alike, on both device models.
    #[test]
    fn twist_matches_shift_bitwise_every_step() {
        let init = |x: usize, y: usize, _z: usize| {
            (
                1.0 + 0.01 * ((x + 2 * y) as f64 * 0.4).sin(),
                [
                    0.02 * (y as f64 * 0.7).sin(),
                    0.01 * (x as f64 * 0.5).cos(),
                    0.0,
                ],
            )
        };
        for dev in [DeviceSpec::v100(), DeviceSpec::mi100()] {
            let geom = Geometry::walls_y_periodic_x(16, 8);
            let mut twist: MrSim2D<D2Q9> =
                MrSim2D::new(dev.clone(), geom.clone(), MrScheme::projective(), 0.8)
                    .with_cpu_threads(2)
                    .with_twist();
            twist.init_with(init);
            let mut shift: MrSim2D<D2Q9> =
                MrSim2D::new(dev, geom, MrScheme::projective(), 0.8).with_cpu_threads(2);
            shift.init_with(init);
            for step in 1..=7u64 {
                twist.step();
                shift.step();
                assert_eq!(
                    twist.field_checksum(),
                    shift.field_checksum(),
                    "twist diverges at step {step}"
                );
            }
        }
    }

    /// Twist with the recursive scheme and inlet/outlet boundaries (the
    /// boundary kernel routes through the same parity mapping).
    #[test]
    fn twist_matches_reference_channel() {
        let geom = Geometry::channel_2d(16, 8, 0.04);
        let mut mr: MrSim2D<D2Q9> = MrSim2D::new(
            DeviceSpec::v100(),
            geom.clone(),
            MrScheme::recursive::<D2Q9>(),
            0.75,
        )
        .with_cpu_threads(4)
        .with_twist();
        let mut st: Solver<D2Q9, _> =
            Solver::new(geom, Recursive::new::<D2Q9>(0.75)).with_threads(2);
        mr.run(15);
        st.run(15);
        assert_fields_close(
            &mr.velocity_field(),
            &st.velocity_field(),
            &mr.density_field(),
            &st.density_field(),
            1e-10,
            "MR-twist vs REG-R",
        );
    }

    /// Twist residency is exactly `M·8` bytes per node — no padding, no
    /// second buffer; the strict race checker proves the reversed-plane
    /// in-place update safe under forced pooling.
    #[test]
    fn twist_footprint_exact_and_racecheck_clean() {
        let geom = Geometry::walls_y_periodic_x(16, 8);
        let mut mr: MrSim2D<D2Q9> =
            MrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8)
                .with_twist()
                .with_racecheck_strict()
                .with_cpu_threads(3)
                .with_parallel_threshold(0);
        assert_eq!(mr.footprint_bytes(), 6 * 16 * 8 * 8);
        mr.init_with(|_, y, _| (1.0, [0.02 * (y as f64).sin(), 0.0, 0.0]));
        mr.run(5);
        assert!(mr.velocity_field().iter().all(|u| u[0].is_finite()));
    }

    /// Twist checkpoints carry the parity in their flavor and round-trip at
    /// odd cut points; a plain-MR snapshot is rejected.
    #[test]
    fn twist_checkpoint_round_trips_at_odd_parity() {
        use lbm_core::io::CheckpointError;
        let init =
            |_x: usize, y: usize, _z: usize| (1.0, [0.02 * (y as f64 * 0.9).sin(), 0.0, 0.0]);
        let geom = Geometry::walls_y_periodic_x(16, 8);
        let mut a: MrSim2D<D2Q9> = MrSim2D::new(
            DeviceSpec::v100(),
            geom.clone(),
            MrScheme::projective(),
            0.8,
        )
        .with_cpu_threads(2)
        .with_twist();
        a.init_with(init);
        a.run(3);
        let blob = a.checkpoint();
        a.run(5);

        let mut b: MrSim2D<D2Q9> = MrSim2D::new(
            DeviceSpec::v100(),
            geom.clone(),
            MrScheme::projective(),
            0.8,
        )
        .with_cpu_threads(2)
        .with_twist();
        b.restore(&blob).unwrap();
        assert_eq!(b.steps(), 3);
        b.run(5);
        assert_eq!(a.field_checksum(), b.field_checksum());

        // A circular-shift snapshot must not restore into a twist driver.
        let mut plain: MrSim2D<D2Q9> =
            MrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8).with_cpu_threads(2);
        plain.run(2);
        let mut c: MrSim2D<D2Q9> = MrSim2D::new(
            DeviceSpec::v100(),
            Geometry::walls_y_periodic_x(16, 8),
            MrScheme::projective(),
            0.8,
        )
        .with_twist();
        assert!(matches!(
            c.restore(&plain.checkpoint()),
            Err(CheckpointError::WrongFlavor { .. })
        ));
    }
}
