//! The standard distribution representation (ST) on the GPU substrate —
//! Algorithm 1 of the paper.
//!
//! Two full SoA lattices in global memory (`f[dir · n + node]`), pull
//! scheme, one thread per lattice node, 1D grid of 1D blocks. Per fluid
//! node and step the kernel reads `Q` and writes `Q` doubles: the measured
//! B/F reproduces Table 2's `2Q·8` (144 for D2Q9, 304 for D3Q19) up to the
//! small inlet/outlet kernel contribution.

use crate::boundary::{boundary_nodes, stencil_coords, MacroCache};
use gpu_sim::exec::{BlockCtx, Kernel, Launch, LaunchStats};
use gpu_sim::memory::Tally;
use gpu_sim::{DeviceSpec, GlobalBuffer, Gpu};
use lbm_core::boundary::{boundary_node_moments, WallGains};
use lbm_core::collision::Collision;
use lbm_core::geometry::{Geometry, NodeType};
use lbm_core::kernels::{KernelConsts, MAX_Q};
use lbm_lattice::moments::Moments;
use lbm_lattice::Lattice;
use std::marker::PhantomData;

/// Streaming by gather (Algorithm 1, lines 3–10) with halfway bounce-back
/// against solid neighbors — everything up to the collision. Shared by the
/// bulk kernel and the multi-device span kernel so both produce
/// bitwise-identical per-node values; moving-wall corrections use the
/// hoisted [`WallGains`] table.
#[inline]
fn pull_gather<L: Lattice>(
    ctx: &mut BlockCtx,
    src: &GlobalBuffer<f64>,
    geom: &Geometry,
    gains: &WallGains,
    idx: usize,
    f_loc: &mut [f64; MAX_Q],
) {
    let n = geom.len();
    let (x, y, z) = geom.coords(idx);
    for i in 0..L::Q {
        let c = L::C[i];
        f_loc[i] = match geom.neighbor(x, y, z, [-c[0], -c[1], -c[2]]) {
            Some((px, py, pz)) => {
                let nidx = geom.idx(px, py, pz);
                match geom.node_at(nidx) {
                    t if t.is_fluid_like() => ctx.read(src, i * n + nidx),
                    NodeType::Wall => ctx.read(src, L::OPP[i] * n + idx),
                    NodeType::MovingWall(uw) => {
                        ctx.read(src, L::OPP[i] * n + idx) + gains.gain(i, uw)
                    }
                    _ => unreachable!(),
                }
            }
            None => ctx.read(src, L::OPP[i] * n + idx),
        };
    }
}

/// Element-wise reference node update: gather + collide + `Q` element
/// stores. The production kernels stage stores in scratch and flush them as
/// per-direction spans; this path is the oracle the debug-build cross-check
/// test compares against.
#[cfg_attr(not(all(test, debug_assertions)), allow(dead_code))]
#[inline]
fn pull_update_node<L: Lattice, C: Collision<L>>(
    ctx: &mut BlockCtx,
    src: &GlobalBuffer<f64>,
    dst: &GlobalBuffer<f64>,
    geom: &Geometry,
    collision: &C,
    gains: &WallGains,
    idx: usize,
) {
    let n = geom.len();
    let mut f_loc = [0.0f64; MAX_Q];
    pull_gather::<L>(ctx, src, geom, gains, idx, &mut f_loc);
    collision.collide(&mut f_loc[..L::Q]);
    for i in 0..L::Q {
        ctx.write(dst, i * n + idx, f_loc[i]);
    }
}

/// Enumerate maximal runs of consecutive node indices over a block's thread
/// slots: `node_of(tid)` yields the node a slot handles (`None` = skip), and
/// `f(ctx, start_tid, start_idx, len)` fires once per run. Runs break at
/// skipped slots and at any index discontinuity, so every run is a
/// contiguous span in both the slot space and the node space.
#[inline]
pub(crate) fn for_each_run(
    ctx: &mut BlockCtx,
    block_size: usize,
    node_of: impl Fn(usize) -> Option<usize>,
    mut f: impl FnMut(&mut BlockCtx, usize, usize, usize),
) {
    let mut run: Option<(usize, usize, usize)> = None;
    for tid in 0..=block_size {
        let node = if tid < block_size { node_of(tid) } else { None };
        match (&mut run, node) {
            (Some((_, sidx, len)), Some(idx)) if idx == *sidx + *len => *len += 1,
            (r, node) => {
                if let Some((stid, sidx, len)) = r.take() {
                    f(ctx, stid, sidx, len);
                }
                *r = node.map(|idx| (tid, idx, 1));
            }
        }
    }
}

/// Pull-update a block's nodes with span-flushed stores: per run of
/// consecutive fluid nodes, gather each node (reads are irregular —
/// neighbor gathers and bounce-backs — so they stay element-wise) into
/// direction-major scratch rows, collide the whole run through the
/// operator's chunk-vectorized [`Collision::collide_soa`], then flush `Q`
/// per-direction [`BlockCtx::write_span_from_scratch`] spans. Same cells,
/// same read order, same values, same per-element race checks as the
/// element-wise path — only the arithmetic is batched across the run and
/// the store loop across the span, so tallies are byte-identical (see
/// `DESIGN.md`, "Executor" and "Vectorized kernels"). `consts.scalar`
/// selects the original node-at-a-time collide as the equivalence oracle.
#[inline]
#[allow(clippy::too_many_arguments)]
fn pull_update_block<L: Lattice, C: Collision<L>>(
    ctx: &mut BlockCtx,
    src: &GlobalBuffer<f64>,
    dst: &GlobalBuffer<f64>,
    geom: &Geometry,
    collision: &C,
    consts: &KernelConsts,
    block_size: usize,
    node_of: impl Fn(usize) -> Option<usize>,
) {
    let n = geom.len();
    for_each_run(ctx, block_size, node_of, |ctx, stid, sidx, len| {
        let mut f_loc = [0.0f64; MAX_Q];
        for k in 0..len {
            pull_gather::<L>(ctx, src, geom, &consts.gains, sidx + k, &mut f_loc);
            if consts.scalar {
                collision.collide(&mut f_loc[..L::Q]);
            }
            let scratch = ctx.scratch();
            for i in 0..L::Q {
                scratch[i * block_size + stid + k] = f_loc[i];
            }
        }
        if !consts.scalar {
            collision.collide_soa(ctx.scratch(), block_size, stid, len);
        }
        for i in 0..L::Q {
            ctx.write_span_from_scratch(dst, i * n + sidx, i * block_size + stid, len);
        }
    });
}

/// Bulk update kernel: pull + collide over all fluid nodes.
struct StBulkKernel<'a, L: Lattice, C: Collision<L>> {
    src: &'a GlobalBuffer<f64>,
    dst: &'a GlobalBuffer<f64>,
    geom: &'a Geometry,
    collision: &'a C,
    consts: &'a KernelConsts,
    block_size: usize,
    _l: PhantomData<L>,
}

impl<L: Lattice, C: Collision<L>> Kernel for StBulkKernel<'_, L, C> {
    fn name(&self) -> &str {
        "st-bulk"
    }

    fn run_block(&self, ctx: &mut BlockCtx) {
        let n = self.geom.len();
        let base = ctx.block_id * self.block_size;
        pull_update_block::<L, C>(
            ctx,
            self.src,
            self.dst,
            self.geom,
            self.collision,
            self.consts,
            self.block_size,
            |tid| {
                let idx = base + tid;
                (idx < n && matches!(self.geom.node_at(idx), NodeType::Fluid)).then_some(idx)
            },
        );
    }
}

/// Pull + collide over the x-span `[x_lo, x_hi)` of `geom` (all y, z): the
/// building block for slab-decomposed multi-device ST. Ghost columns
/// outside the span are read (time t) but never written.
struct StSpanKernel<'a, L: Lattice, C: Collision<L>> {
    src: &'a GlobalBuffer<f64>,
    dst: &'a GlobalBuffer<f64>,
    geom: &'a Geometry,
    collision: &'a C,
    consts: &'a KernelConsts,
    block_size: usize,
    x_lo: usize,
    x_hi: usize,
    _l: PhantomData<L>,
}

impl<L: Lattice, C: Collision<L>> Kernel for StSpanKernel<'_, L, C> {
    fn name(&self) -> &str {
        "st-bulk-span"
    }

    fn run_block(&self, ctx: &mut BlockCtx) {
        let w = self.x_hi - self.x_lo;
        let span = w * self.geom.ny * self.geom.nz;
        let base = ctx.block_id * self.block_size;
        // Runs still flush as maximal spans: a row change makes `idx` jump
        // (the span covers only `[x_lo, x_hi)` of each row), which breaks
        // the run in `for_each_run`'s consecutive-index check.
        pull_update_block::<L, C>(
            ctx,
            self.src,
            self.dst,
            self.geom,
            self.collision,
            self.consts,
            self.block_size,
            |tid| {
                let q = base + tid;
                if q >= span {
                    return None;
                }
                let x = self.x_lo + q % w;
                let y = (q / w) % self.geom.ny;
                let z = q / (w * self.geom.ny);
                let idx = self.geom.idx(x, y, z);
                matches!(self.geom.node_at(idx), NodeType::Fluid).then_some(idx)
            },
        );
    }
}

/// Launch the pull-scheme update restricted to the x-span `[x_lo, x_hi)`.
/// Per-node arithmetic is identical to `StSim::step`'s bulk launch, so a
/// union of span launches covering the domain is bitwise equal to one full
/// launch.
#[allow(clippy::too_many_arguments)]
pub fn launch_st_pull_span<L: Lattice, C: Collision<L>>(
    gpu: &Gpu,
    src: &GlobalBuffer<f64>,
    dst: &GlobalBuffer<f64>,
    geom: &Geometry,
    collision: &C,
    consts: &KernelConsts,
    block_size: usize,
    x_lo: usize,
    x_hi: usize,
) -> LaunchStats {
    assert!(x_lo < x_hi && x_hi <= geom.nx, "bad span {x_lo}..{x_hi}");
    let span = (x_hi - x_lo) * geom.ny * geom.nz;
    gpu.launch(
        &Launch {
            blocks: span.div_ceil(block_size),
            threads_per_block: block_size,
            shared_doubles: 0,
            scratch_doubles: L::Q * block_size,
        },
        &StSpanKernel::<L, C> {
            src,
            dst,
            geom,
            collision,
            consts,
            block_size,
            x_lo,
            x_hi,
            _l: PhantomData,
        },
    )
}

/// Launch the inlet/outlet rebuild kernel over `nodes` (post-bulk state in
/// `dst`). Public for the multi-device drivers; `StSim::step` uses the same
/// kernel.
pub fn launch_st_bc<L: Lattice, C: Collision<L>>(
    gpu: &Gpu,
    dst: &GlobalBuffer<f64>,
    geom: &Geometry,
    collision: &C,
    nodes: &[(usize, usize, usize)],
    block_size: usize,
) -> LaunchStats {
    assert!(!nodes.is_empty(), "no boundary nodes");
    gpu.launch(
        &Launch::simple(nodes.len().div_ceil(block_size), block_size),
        &StBcKernel::<L, C> {
            dst,
            geom,
            collision,
            nodes,
            block_size,
            _l: PhantomData,
        },
    )
}

/// Streaming scheme of the ST pattern (paper §3.1): *pull* performs
/// streaming before collision by gathering from neighbors (the fastest GPU
/// configuration, used by default); *push* collides first and scatters
/// post-collision populations to the neighbors. Both move `2Q` doubles per
/// node; on real GPUs push pays extra for misaligned stores, which is why
/// the paper's reference uses pull. The push variant exists for the
/// pull-vs-push ablation bench.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum StStream {
    #[default]
    Pull,
    Push,
}

/// Push-scheme bulk kernel: read own pre-collision state, collide, scatter.
struct StPushKernel<'a, L: Lattice, C: Collision<L>> {
    src: &'a GlobalBuffer<f64>,
    dst: &'a GlobalBuffer<f64>,
    geom: &'a Geometry,
    collision: &'a C,
    consts: &'a KernelConsts,
    block_size: usize,
    _l: PhantomData<L>,
}

impl<L: Lattice, C: Collision<L>> Kernel for StPushKernel<'_, L, C> {
    fn name(&self) -> &str {
        "st-bulk-push"
    }

    fn run_block(&self, ctx: &mut BlockCtx) {
        let n = self.geom.len();
        let base = ctx.block_id * self.block_size;
        let bs = self.block_size;
        let node_of = |tid: usize| {
            let idx = base + tid;
            (idx < n && matches!(self.geom.node_at(idx), NodeType::Fluid)).then_some(idx)
        };
        // Pass 1: the pre-collision loads are the coalesced side of push —
        // stage each maximal fluid run's `Q` direction rows into scratch as
        // spans. Each source cell is read at most once per launch, so the
        // reordering relative to the scatters is accounting-neutral.
        for_each_run(ctx, bs, node_of, |ctx, stid, sidx, len| {
            for i in 0..L::Q {
                ctx.read_span_to_scratch(self.src, i * n + sidx, i * bs + stid, len);
            }
        });
        // Collide the staged runs through the operator's chunk-vectorized
        // SoA kernel (bitwise-identical to per-node collide).
        if !self.consts.scalar {
            for_each_run(ctx, bs, node_of, |ctx, stid, _, len| {
                self.collision.collide_soa(ctx.scratch(), bs, stid, len);
            });
        }
        // Pass 2: scatter element-wise (the scatter targets are irregular
        // by construction — that is the point of the ablation).
        let mut f_loc = [0.0f64; MAX_Q];
        for tid in 0..bs {
            let Some(idx) = node_of(tid) else {
                continue;
            };
            let (x, y, z) = self.geom.coords(idx);
            let scratch = ctx.scratch();
            for i in 0..L::Q {
                f_loc[i] = scratch[i * bs + tid];
            }
            if self.consts.scalar {
                self.collision.collide(&mut f_loc[..L::Q]);
            }
            // Scatter (streaming by push); solid destinations reflect back
            // into this node's opposite slot.
            for i in 0..L::Q {
                let c = L::C[i];
                match self.geom.neighbor(x, y, z, c) {
                    Some((dx, dy, dz)) => {
                        let didx = self.geom.idx(dx, dy, dz);
                        match self.geom.node_at(didx) {
                            t if t.is_fluid_like() => ctx.write(self.dst, i * n + didx, f_loc[i]),
                            NodeType::Wall => ctx.write(self.dst, L::OPP[i] * n + idx, f_loc[i]),
                            NodeType::MovingWall(uw) => ctx.write(
                                self.dst,
                                L::OPP[i] * n + idx,
                                f_loc[i] + self.consts.gains.gain(L::OPP[i], uw),
                            ),
                            _ => unreachable!(),
                        }
                    }
                    None => ctx.write(self.dst, L::OPP[i] * n + idx, f_loc[i]),
                }
            }
        }
    }
}

/// Inlet/outlet rebuild kernel (runs after the bulk kernel).
struct StBcKernel<'a, L: Lattice, C: Collision<L>> {
    dst: &'a GlobalBuffer<f64>,
    geom: &'a Geometry,
    collision: &'a C,
    nodes: &'a [(usize, usize, usize)],
    block_size: usize,
    _l: PhantomData<L>,
}

impl<L: Lattice, C: Collision<L>> StBcKernel<'_, L, C> {
    fn read_macro(&self, ctx: &mut BlockCtx, x: usize, y: usize, z: usize) -> (f64, [f64; 3]) {
        let n = self.geom.len();
        let idx = self.geom.idx(x, y, z);
        let mut rho = 0.0;
        let mut j = [0.0f64; 3];
        for i in 0..L::Q {
            let fi = ctx.read(self.dst, i * n + idx);
            let c = L::cf(i);
            rho += fi;
            j[0] += c[0] * fi;
            j[1] += c[1] * fi;
            j[2] += c[2] * fi;
        }
        (rho, [j[0] / rho, j[1] / rho, j[2] / rho])
    }
}

impl<L: Lattice, C: Collision<L>> Kernel for StBcKernel<'_, L, C> {
    fn name(&self) -> &str {
        "st-bc"
    }

    fn run_block(&self, ctx: &mut BlockCtx) {
        let n = self.geom.len();
        let base = ctx.block_id * self.block_size;
        let tau = self.collision.tau();
        for tid in 0..self.block_size {
            let Some(&(x, y, z)) = self.nodes.get(base + tid) else {
                break;
            };
            let mut cache = MacroCache::new();
            for (sx, sy, sz) in stencil_coords(self.geom, x, y, z) {
                let (rho, u) = self.read_macro(ctx, sx, sy, sz);
                cache.insert((sx, sy, sz), rho, u);
            }
            let m = boundary_node_moments::<L>(self.geom, x, y, z, tau, &|qx, qy, qz| {
                cache.lookup(qx, qy, qz)
            });
            let mut out = [0.0f64; MAX_Q];
            self.collision.reconstruct(&m, &mut out[..L::Q]);
            let idx = self.geom.idx(x, y, z);
            for i in 0..L::Q {
                ctx.write(self.dst, i * n + idx, out[i]);
            }
        }
    }
}

/// Driver for an ST simulation on the substrate.
pub struct StSim<L: Lattice, C: Collision<L>> {
    gpu: Gpu,
    geom: Geometry,
    f: [GlobalBuffer<f64>; 2],
    cur: usize,
    collision: C,
    consts: KernelConsts,
    block_size: usize,
    stream: StStream,
    boundary: Vec<(usize, usize, usize)>,
    steps: u64,
    accum: Tally,
    profiler: Option<std::sync::Arc<gpu_sim::profiler::Profiler>>,
    obs: Option<std::sync::Arc<obs::Obs>>,
    monitor: Option<obs::PhysicsMonitor>,
    _l: PhantomData<L>,
}

impl<L: Lattice, C: Collision<L>> StSim<L, C> {
    /// Build an ST simulation on `device` over `geom`, initialized to
    /// equilibrium at rest (inlets at their prescribed velocity).
    pub fn new(device: DeviceSpec, geom: Geometry, collision: C) -> Self {
        if L::D == 2 {
            assert_eq!(geom.nz, 1, "2D lattice on a 3D domain");
        }
        let n = geom.len();
        let boundary = boundary_nodes(&geom);
        if !boundary.is_empty() {
            assert!(geom.nx >= 5, "FD boundaries need nx ≥ 5");
        }
        let consts = KernelConsts::new::<L>(collision.tau());
        let mut sim = StSim {
            gpu: Gpu::new(device),
            geom,
            f: [
                GlobalBuffer::new(L::Q * n).with_touch_tracking(),
                GlobalBuffer::new(L::Q * n).with_touch_tracking(),
            ],
            cur: 0,
            collision,
            consts,
            block_size: 256,
            stream: StStream::Pull,
            boundary,
            steps: 0,
            accum: Tally::default(),
            profiler: None,
            obs: None,
            monitor: None,
            _l: PhantomData,
        };
        sim.init_with(|_, _, _| (1.0, [0.0; 3]));
        sim
    }

    /// Limit the CPU worker threads backing the substrate.
    pub fn with_cpu_threads(mut self, n: usize) -> Self {
        self.gpu = self.gpu.with_cpu_threads(n);
        self
    }

    /// Override the minimum launch size dispatched to the worker pool
    /// (see `gpu_sim::Gpu::with_parallel_threshold`); `0` forces pooling
    /// for every multi-block launch.
    pub fn with_parallel_threshold(mut self, items: usize) -> Self {
        self.gpu = self.gpu.with_parallel_threshold(items);
        self
    }

    /// Record every kernel launch into a shared profiler (the substrate's
    /// nvvp/rocprof analog): per-kernel byte counts and B/F.
    pub fn with_profiler(mut self, p: std::sync::Arc<gpu_sim::profiler::Profiler>) -> Self {
        self.profiler = Some(p);
        self
    }

    /// Attach an observability hub: the driver emits a `step` span per
    /// timestep and the device nests kernel spans and publishes launch
    /// metrics under it.
    pub fn with_obs(mut self, obs: std::sync::Arc<obs::Obs>) -> Self {
        self.set_obs(obs);
        self
    }

    /// In-place [`StSim::with_obs`] (the `Simulation` trait surface).
    pub fn set_obs(&mut self, obs: std::sync::Arc<obs::Obs>) {
        self.gpu.set_obs(obs.clone());
        self.obs = Some(obs);
    }

    /// Attach (or clear) the fleet trace context — the job identity the
    /// serve scheduler assigned this simulation. Step and kernel spans
    /// carry its args from now on; stepping and tallies are unaffected.
    pub fn set_trace_ctx(&mut self, ctx: Option<obs::TraceCtx>) {
        self.gpu.set_trace_ctx(ctx);
    }

    /// Attach a physics monitor sampling the macroscopic fields every
    /// `cfg.cadence` steps (mass/momentum/max-|u|/NaN guards).
    pub fn with_monitor(mut self, cfg: obs::MonitorConfig) -> Self {
        self.monitor = Some(obs::PhysicsMonitor::new(cfg));
        self
    }

    /// The attached physics monitor, if any.
    pub fn monitor(&self) -> Option<&obs::PhysicsMonitor> {
        self.monitor.as_ref()
    }

    /// Set the thread-block size of the bulk kernel.
    pub fn with_block_size(mut self, bs: usize) -> Self {
        assert!(bs >= 1);
        self.block_size = bs;
        self
    }

    /// Run the original per-node scalar kernels instead of the vectorized
    /// SoA chunks. The two paths are bitwise-identical (enforced by
    /// `tests/kernel_equivalence.rs`); the scalar path exists as the
    /// equivalence oracle.
    pub fn with_scalar_kernels(mut self) -> Self {
        self.consts.scalar = true;
        self
    }

    /// Select the streaming scheme. The push variant does not support
    /// inlet/outlet boundaries (its boundary contributions would have to be
    /// injected *before* the scatter); it exists for the pull-vs-push
    /// ablation on wall/periodic domains.
    pub fn with_stream(mut self, stream: StStream) -> Self {
        if stream == StStream::Push {
            assert!(
                self.boundary.is_empty(),
                "push streaming does not support inlet/outlet boundaries"
            );
        }
        self.stream = stream;
        self
    }

    /// Initialize all nodes to the operator-consistent equilibrium of a
    /// macroscopic field (the collision operator's reconstruction of
    /// `{ρ, u, Π_eq}` — see the reference solver's `init_with`).
    pub fn init_with(&mut self, field: impl Fn(usize, usize, usize) -> (f64, [f64; 3])) {
        let n = self.geom.len();
        let mut feq = [0.0f64; MAX_Q];
        for idx in 0..n {
            let (x, y, z) = self.geom.coords(idx);
            let (rho, u) = match self.geom.node_at(idx) {
                NodeType::Inlet(u_bc) => (field(x, y, z).0, u_bc),
                NodeType::Outlet(rho_bc) => (rho_bc, field(x, y, z).1),
                _ => field(x, y, z),
            };
            let m = Moments {
                rho,
                u,
                pi: Moments::pi_eq(rho, u, L::D),
            };
            self.collision.reconstruct(&m, &mut feq[..L::Q]);
            for i in 0..L::Q {
                self.f[self.cur].set(i * n + idx, feq[i]);
            }
        }
        self.steps = 0;
        self.accum = Tally::default();
    }

    /// Advance one timestep (bulk launch + boundary launch).
    pub fn step(&mut self) {
        let obs = self.obs.clone();
        let _step_span = obs.as_ref().map(|o| {
            let mut args = vec![("t", self.steps.to_string())];
            if let Some(ctx) = self.gpu.trace_ctx() {
                ctx.append_args(&mut args);
            }
            o.tracer.span_args("driver", "step", &args)
        });
        let n = self.geom.len();
        let (src, dst) = (&self.f[self.cur], &self.f[self.cur ^ 1]);
        let blocks = n.div_ceil(self.block_size);
        // Both bulk kernels stage span traffic direction-major in scratch.
        let cfg = Launch {
            blocks,
            threads_per_block: self.block_size,
            shared_doubles: 0,
            scratch_doubles: L::Q * self.block_size,
        };
        let stats = match self.stream {
            StStream::Pull => self.gpu.launch(
                &cfg,
                &StBulkKernel::<L, C> {
                    src,
                    dst,
                    geom: &self.geom,
                    collision: &self.collision,
                    consts: &self.consts,
                    block_size: self.block_size,
                    _l: PhantomData,
                },
            ),
            StStream::Push => self.gpu.launch(
                &cfg,
                &StPushKernel::<L, C> {
                    src,
                    dst,
                    geom: &self.geom,
                    collision: &self.collision,
                    consts: &self.consts,
                    block_size: self.block_size,
                    _l: PhantomData,
                },
            ),
        };
        self.accum.merge(&stats.tally);
        if let Some(p) = &self.profiler {
            p.record(&stats, self.geom.fluid_count() as u64);
        }

        if !self.boundary.is_empty() {
            let bblocks = self.boundary.len().div_ceil(self.block_size);
            let stats = self.gpu.launch(
                &Launch::simple(bblocks, self.block_size),
                &StBcKernel::<L, C> {
                    dst,
                    geom: &self.geom,
                    collision: &self.collision,
                    nodes: &self.boundary,
                    block_size: self.block_size,
                    _l: PhantomData,
                },
            );
            self.accum.merge(&stats.tally);
            if let Some(p) = &self.profiler {
                p.record(&stats, self.boundary.len() as u64);
            }
        }

        self.cur ^= 1;
        self.steps += 1;
        self.sample_monitor();
    }

    /// Cadence-gated monitor sampling: field extraction (the expensive
    /// part) only happens on sampling steps.
    fn sample_monitor(&mut self) {
        if !self.monitor.as_ref().is_some_and(|m| m.due(self.steps)) {
            return;
        }
        let (rho, u) = self.macro_fields();
        let s = self.monitor.as_mut().unwrap().observe(self.steps, &rho, &u);
        if let Some(o) = &self.obs {
            o.metrics
                .gauge_set("monitor_mass", &[("pattern", "st")], s.mass);
            o.metrics
                .gauge_set("monitor_max_u", &[("pattern", "st")], s.max_u);
            if s.nonfinite > 0 {
                o.tracer.instant(
                    "monitor",
                    "nonfinite",
                    &[
                        ("step", s.step.to_string()),
                        ("count", s.nonfinite.to_string()),
                    ],
                );
            }
        }
    }

    /// Advance `steps` timesteps, then force a final monitor sample so a
    /// run that ends off the sampling cadence still has its tail checked.
    pub fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
        self.finish_monitor();
    }

    /// Force a final monitor sample at the current step (no-op without a
    /// monitor, or when the last step was already sampled). The flushed
    /// sample is published to the hub like any cadence sample, so monitor
    /// series stay gap-free across run ends *and* fleet evictions.
    pub fn finish_monitor(&mut self) {
        if self.monitor.is_none() {
            return;
        }
        let (rho, u) = self.macro_fields();
        let s = self.monitor.as_mut().unwrap().finish(self.steps, &rho, &u);
        if let (Some(s), Some(o)) = (s, &self.obs) {
            o.metrics
                .gauge_set("monitor_mass", &[("pattern", "st")], s.mass);
            o.metrics
                .gauge_set("monitor_max_u", &[("pattern", "st")], s.max_u);
            o.tracer
                .instant("monitor", "flush", &[("step", s.step.to_string())]);
        }
    }

    /// Mutable access to the physics monitor (recovery rollback).
    pub fn monitor_mut(&mut self) -> Option<&mut obs::PhysicsMonitor> {
        self.monitor.as_mut()
    }

    /// Attach a deterministic fault plan to the device and both lattices
    /// (see `gpu_sim::FaultPlan`): injected write corruption and launch
    /// aborts become live, with unchanged traffic accounting.
    pub fn with_fault_plan(mut self, plan: std::sync::Arc<gpu_sim::FaultPlan>) -> Self {
        self.gpu.set_fault_plan(plan.clone());
        self.f[0].set_fault_plan(plan.clone());
        self.f[1].set_fault_plan(plan);
        self
    }

    /// Completed timesteps.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Domain geometry.
    pub fn geom(&self) -> &Geometry {
        &self.geom
    }

    /// Aggregate traffic over all steps so far.
    pub fn traffic(&self) -> Tally {
        self.accum
    }

    /// Measured DRAM bytes per fluid lattice update (Table 2's B/F).
    pub fn measured_bpf(&self) -> f64 {
        let updates = self.geom.fluid_count() as u64 * self.steps;
        if updates == 0 {
            return 0.0;
        }
        self.accum.dram_bytes() as f64 / updates as f64
    }

    /// Device-memory footprint of the two lattices.
    pub fn footprint_bytes(&self) -> usize {
        self.f[0].size_bytes() + self.f[1].size_bytes()
    }

    /// Distribution at a node (current state).
    pub fn f_at(&self, x: usize, y: usize, z: usize) -> Vec<f64> {
        let n = self.geom.len();
        let idx = self.geom.idx(x, y, z);
        (0..L::Q)
            .map(|i| self.f[self.cur].get(i * n + idx))
            .collect()
    }

    /// Moments at a node (post-collision state).
    pub fn moments_at(&self, x: usize, y: usize, z: usize) -> Moments {
        Moments::from_f::<L>(&self.f_at(x, y, z))
    }

    /// Density and velocity fields in one pass over the lattice, without
    /// the per-node `Vec` of [`StSim::f_at`] (solid nodes report zero).
    /// This is what the physics monitor samples.
    pub fn macro_fields(&self) -> (Vec<f64>, Vec<[f64; 3]>) {
        let n = self.geom.len();
        let buf = &self.f[self.cur];
        let mut rho_out = vec![0.0; n];
        let mut u_out = vec![[0.0; 3]; n];
        for idx in 0..n {
            if !self.geom.node_at(idx).is_fluid_like() {
                continue;
            }
            let mut rho = 0.0;
            let mut j = [0.0f64; 3];
            for i in 0..L::Q {
                let fi = buf.get(i * n + idx);
                let c = L::cf(i);
                rho += fi;
                j[0] += c[0] * fi;
                j[1] += c[1] * fi;
                j[2] += c[2] * fi;
            }
            let inv_rho = 1.0 / rho;
            rho_out[idx] = rho;
            u_out[idx] = [j[0] * inv_rho, j[1] * inv_rho, j[2] * inv_rho];
        }
        (rho_out, u_out)
    }

    /// Velocity field (solid nodes report zero).
    pub fn velocity_field(&self) -> Vec<[f64; 3]> {
        self.macro_fields().1
    }

    /// Density field (solid nodes report zero).
    pub fn density_field(&self) -> Vec<f64> {
        self.macro_fields().0
    }

    /// FNV-1a fingerprint of the macroscopic fields (bitwise-sensitive; two
    /// runs match iff their fields are identical to the last bit).
    pub fn field_checksum(&self) -> u64 {
        let (rho, u) = self.macro_fields();
        lbm_core::io::field_checksum(&rho, &u)
    }

    /// Serialize the full solver state (current lattice, step counter,
    /// traffic accumulator) as a versioned, checksummed snapshot.
    pub fn checkpoint(&self) -> Vec<u8> {
        let n = self.geom.len();
        let mut w = lbm_core::io::CheckpointWriter::new("st");
        w.put_u64(self.geom.nx as u64)
            .put_u64(self.geom.ny as u64)
            .put_u64(self.geom.nz as u64)
            .put_u64(L::Q as u64)
            .put_u64(self.steps)
            .put_u64(self.accum.reads)
            .put_u64(self.accum.writes)
            .put_u64(self.accum.bytes_read)
            .put_u64(self.accum.bytes_written)
            .put_u64(self.accum.dram_bytes_read)
            .put_u64(self.accum.l2_read_hits)
            .put_f64s(&self.f[self.cur].snapshot()[..L::Q * n]);
        w.finish()
    }

    /// Restore a [`StSim::checkpoint`] snapshot taken on an identically
    /// configured simulation. Resuming replays the exact uninterrupted
    /// trajectory (the update is deterministic and the snapshot is bitwise).
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), lbm_core::io::CheckpointError> {
        use lbm_core::io::CheckpointReader;
        let mut r = CheckpointReader::open(bytes, "st")?;
        r.expect_u64(self.geom.nx as u64, "nx")?;
        r.expect_u64(self.geom.ny as u64, "ny")?;
        r.expect_u64(self.geom.nz as u64, "nz")?;
        r.expect_u64(L::Q as u64, "Q")?;
        self.steps = r.take_u64()?;
        self.accum = Tally {
            reads: r.take_u64()?,
            writes: r.take_u64()?,
            bytes_read: r.take_u64()?,
            bytes_written: r.take_u64()?,
            dram_bytes_read: r.take_u64()?,
            l2_read_hits: r.take_u64()?,
        };
        let n = self.geom.len();
        let f = r.take_f64s(L::Q * n)?;
        for (i, v) in f.iter().enumerate() {
            self.f[0].set(i, *v);
        }
        self.cur = 0;
        if let Some(m) = self.monitor.as_mut() {
            m.rollback_to(self.steps);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbm_core::collision::{Bgk, Projective};
    use lbm_core::Solver;
    use lbm_lattice::{D2Q9, D3Q19};

    /// The substrate ST solver must match the reference CPU solver exactly
    /// (same arithmetic, same order): 2D channel with BGK.
    #[test]
    fn matches_reference_2d_channel() {
        let geom = Geometry::channel_2d(16, 10, 0.04);
        let mut gpu_sim: StSim<D2Q9, _> =
            StSim::new(DeviceSpec::v100(), geom.clone(), Bgk::new(0.8)).with_cpu_threads(4);
        let mut reference: Solver<D2Q9, _> = Solver::new(geom, Bgk::new(0.8)).with_threads(2);
        gpu_sim.run(25);
        reference.run(25);
        let (ug, ur) = (gpu_sim.velocity_field(), reference.velocity_field());
        for (a, b) in ug.iter().zip(&ur) {
            for k in 0..3 {
                assert!((a[k] - b[k]).abs() < 1e-13, "{a:?} vs {b:?}");
            }
        }
        let (rg, rr) = (gpu_sim.density_field(), reference.density_field());
        for (a, b) in rg.iter().zip(&rr) {
            assert!((a - b).abs() < 1e-13);
        }
    }

    /// Same in 3D with projective regularization.
    #[test]
    fn matches_reference_3d_channel() {
        let geom = Geometry::channel_3d(12, 7, 7, 0.03);
        let mut gpu_sim: StSim<D3Q19, _> =
            StSim::new(DeviceSpec::mi100(), geom.clone(), Projective::new(0.7)).with_cpu_threads(4);
        let mut reference: Solver<D3Q19, _> =
            Solver::new(geom, Projective::new(0.7)).with_threads(2);
        gpu_sim.run(15);
        reference.run(15);
        let (ug, ur) = (gpu_sim.velocity_field(), reference.velocity_field());
        for (a, b) in ug.iter().zip(&ur) {
            for k in 0..3 {
                assert!((a[k] - b[k]).abs() < 1e-13);
            }
        }
    }

    /// Measured B/F on a periodic box reproduces Table 2's 2Q·8 exactly
    /// (no boundary kernel, every read unique).
    #[test]
    fn measured_bpf_matches_table2_2d() {
        let geom = Geometry::periodic_2d(32, 16);
        let mut sim: StSim<D2Q9, _> =
            StSim::new(DeviceSpec::v100(), geom, Bgk::new(0.9)).with_cpu_threads(2);
        sim.run(3);
        let bpf = sim.measured_bpf();
        assert!((bpf - 144.0).abs() < 1e-9, "B/F = {bpf}");
    }

    #[test]
    fn measured_bpf_matches_table2_3d() {
        let geom = Geometry::periodic_3d(12, 8, 8);
        let mut sim: StSim<D3Q19, _> =
            StSim::new(DeviceSpec::v100(), geom, Bgk::new(0.9)).with_cpu_threads(2);
        sim.run(2);
        let bpf = sim.measured_bpf();
        assert!((bpf - 304.0).abs() < 1e-9, "B/F = {bpf}");
    }

    /// Channel B/F: slightly above 2Q·8 because of the boundary kernel, but
    /// within a few percent at moderate sizes.
    #[test]
    fn channel_bpf_near_ideal() {
        let geom = Geometry::channel_2d(48, 24, 0.04);
        let mut sim: StSim<D2Q9, _> =
            StSim::new(DeviceSpec::v100(), geom, Bgk::new(0.8)).with_cpu_threads(2);
        sim.run(3);
        let bpf = sim.measured_bpf();
        assert!(bpf > 130.0 && bpf < 160.0, "B/F = {bpf}");
    }

    /// Pull and push produce the same macroscopic trajectory (they are the
    /// same update in a different order) and the same B/F.
    #[test]
    fn push_matches_pull() {
        let init = |x: usize, y: usize, _z: usize| {
            (
                1.0,
                [
                    0.03 * (y as f64 * 0.6).sin(),
                    0.01 * (x as f64 * 0.4).cos(),
                    0.0,
                ],
            )
        };
        let geom = Geometry::walls_y_periodic_x(16, 10);
        let mut pull: StSim<D2Q9, _> =
            StSim::new(DeviceSpec::v100(), geom.clone(), Projective::new(0.8)).with_cpu_threads(2);
        pull.init_with(init);
        let mut push: StSim<D2Q9, _> = StSim::new(DeviceSpec::v100(), geom, Projective::new(0.8))
            .with_stream(StStream::Push)
            .with_cpu_threads(2);
        push.init_with(init);
        pull.run(12);
        push.run(12);
        let (up, us) = (pull.velocity_field(), push.velocity_field());
        for (a, b) in up.iter().zip(&us) {
            for k in 0..3 {
                assert!((a[k] - b[k]).abs() < 1e-12, "{a:?} vs {b:?}");
            }
        }
        assert!((pull.measured_bpf() - push.measured_bpf()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "push streaming does not support")]
    fn push_rejects_inlet_outlet() {
        let geom = Geometry::channel_2d(16, 8, 0.03);
        let _ = StSim::<D2Q9, _>::new(DeviceSpec::v100(), geom, Bgk::new(0.8))
            .with_stream(StStream::Push);
    }

    /// Obs integration: step spans nest the device's kernel spans, metrics
    /// see the launches, and the monitor confirms conservation on a
    /// periodic box.
    #[test]
    fn obs_and_monitor_wire_through() {
        let obs = obs::Obs::shared();
        let geom = Geometry::periodic_2d(16, 8);
        let mut sim: StSim<D2Q9, _> = StSim::new(DeviceSpec::v100(), geom, Bgk::new(0.9))
            .with_cpu_threads(2)
            .with_obs(obs.clone())
            .with_monitor(obs::MonitorConfig {
                cadence: 2,
                ..Default::default()
            });
        sim.init_with(|x, _, _| (1.0, [0.02 * (x as f64 * 0.5).sin(), 0.0, 0.0]));
        sim.run(4);
        // 4 step spans, each nesting one st-bulk kernel span (periodic box →
        // no bc kernel): B/E pairs in order.
        let ev = obs.tracer.events();
        let step_begins = ev
            .iter()
            .filter(|e| e.ph == 'B' && e.name == "step")
            .count();
        let kernel_begins = ev
            .iter()
            .filter(|e| e.ph == 'B' && e.name == "st-bulk")
            .count();
        assert_eq!(step_begins, 4);
        assert_eq!(kernel_begins, 4);
        assert_eq!(ev[0].name, "step");
        assert_eq!(ev[1].name, "st-bulk");
        let labels = [("kernel", "st-bulk"), ("device", "NVIDIA V100")];
        assert_eq!(obs.metrics.counter("launches", &labels), Some(4));
        // Monitor sampled at steps 2 and 4; mass is conserved on the
        // periodic box.
        let m = sim.monitor().unwrap();
        assert_eq!(m.samples().len(), 2);
        assert!(m.is_ok(), "{:?}", m.violations());
        assert!(m.mass_drift() <= 1e-10);
        assert!(obs
            .metrics
            .gauge("monitor_mass", &[("pattern", "st")])
            .is_some());
    }

    /// macro_fields is a single-pass equivalent of the per-node accessors.
    #[test]
    fn macro_fields_matches_per_node_accessors() {
        let geom = Geometry::channel_2d(16, 10, 0.04);
        let mut sim: StSim<D2Q9, _> =
            StSim::new(DeviceSpec::v100(), geom, Bgk::new(0.8)).with_cpu_threads(2);
        sim.run(5);
        let (rho, u) = sim.macro_fields();
        for idx in 0..sim.geom().len() {
            let (x, y, z) = sim.geom().coords(idx);
            if sim.geom().node_at(idx).is_fluid_like() {
                let m = sim.moments_at(x, y, z);
                assert_eq!(rho[idx], m.rho);
                assert_eq!(u[idx], m.u);
            } else {
                assert_eq!(rho[idx], 0.0);
                assert_eq!(u[idx], [0.0; 3]);
            }
        }
    }

    /// Footprint is two full lattices: 2Q doubles per node.
    #[test]
    fn footprint_is_two_lattices() {
        let geom = Geometry::periodic_2d(10, 10);
        let sim: StSim<D2Q9, _> = StSim::new(DeviceSpec::v100(), geom, Bgk::new(0.8));
        assert_eq!(sim.footprint_bytes(), 2 * 9 * 100 * 8);
    }

    /// Executor determinism: the same simulation under 1, 3, and 8 CPU
    /// threads produces bitwise-identical populations and an identical
    /// traffic tally — block scheduling (including dynamic stealing in the
    /// persistent pool) must be invisible to both physics and accounting.
    #[test]
    fn executor_determinism_across_thread_counts() {
        let run = |threads: usize| {
            let geom = Geometry::channel_2d(20, 11, 0.04);
            let mut sim: StSim<D2Q9, _> = StSim::new(DeviceSpec::v100(), geom, Bgk::new(0.8))
                .with_cpu_threads(threads)
                .with_parallel_threshold(0) // force pooled dispatch at any size
                .with_block_size(32); // 7 ragged blocks
            sim.run(8);
            let mut f = Vec::new();
            for idx in 0..sim.geom().len() {
                let (x, y, z) = sim.geom().coords(idx);
                f.extend(sim.f_at(x, y, z));
            }
            (f, sim.traffic())
        };
        let base = run(1);
        for threads in [3, 8] {
            let got = run(threads);
            assert!(
                base.0.iter().zip(&got.0).all(|(a, b)| a == b),
                "fields diverge at {threads} threads"
            );
            assert_eq!(base.1, got.1, "tally diverges at {threads} threads");
        }
    }

    /// The span-staged store path must be bitwise- and tally-transparent
    /// against the element-wise oracle (`pull_update_node`). Debug builds
    /// only, matching the oracle's own gating.
    #[cfg(debug_assertions)]
    #[test]
    fn span_store_path_matches_element_oracle() {
        let geom = Geometry::cavity_2d(13, 0.05);
        let n = geom.len();
        let q = <D2Q9 as Lattice>::Q;
        let vals: Vec<f64> = (0..q * n).map(|i| 1.0 + (i as f64) * 1e-4).collect();
        let collision = Bgk::new(0.8);
        let gpu = Gpu::new(DeviceSpec::v100()).with_cpu_threads(3);
        let (bs, blocks) = (32, n.div_ceil(32));

        struct ElementOracle<'a, C: Collision<D2Q9>> {
            src: &'a GlobalBuffer<f64>,
            dst: &'a GlobalBuffer<f64>,
            geom: &'a Geometry,
            collision: &'a C,
            block_size: usize,
        }
        impl<C: Collision<D2Q9>> Kernel for ElementOracle<'_, C> {
            fn name(&self) -> &str {
                "st-bulk-element"
            }
            fn run_block(&self, ctx: &mut BlockCtx) {
                let n = self.geom.len();
                let base = ctx.block_id * self.block_size;
                for tid in 0..self.block_size {
                    let idx = base + tid;
                    if idx >= n {
                        break;
                    }
                    if !matches!(self.geom.node_at(idx), NodeType::Fluid) {
                        continue;
                    }
                    pull_update_node::<D2Q9, _>(
                        ctx,
                        self.src,
                        self.dst,
                        self.geom,
                        self.collision,
                        &KernelConsts::new::<D2Q9>(self.collision.tau()).gains,
                        idx,
                    );
                }
            }
        }

        let src_a = GlobalBuffer::from_vec(vals.clone()).with_touch_tracking();
        let dst_a: GlobalBuffer<f64> = GlobalBuffer::new(q * n).with_touch_tracking();
        let span_stats = gpu.launch(
            &Launch {
                blocks,
                threads_per_block: bs,
                shared_doubles: 0,
                scratch_doubles: q * bs,
            },
            &StBulkKernel::<D2Q9, _> {
                src: &src_a,
                dst: &dst_a,
                geom: &geom,
                collision: &collision,
                consts: &KernelConsts::new::<D2Q9>(Collision::<D2Q9>::tau(&collision)),
                block_size: bs,
                _l: PhantomData,
            },
        );

        let src_b = GlobalBuffer::from_vec(vals).with_touch_tracking();
        let dst_b: GlobalBuffer<f64> = GlobalBuffer::new(q * n).with_touch_tracking();
        let elem_stats = gpu.launch(
            &Launch::simple(blocks, bs),
            &ElementOracle {
                src: &src_b,
                dst: &dst_b,
                geom: &geom,
                collision: &collision,
                block_size: bs,
            },
        );

        assert_eq!(
            span_stats.tally, elem_stats.tally,
            "span staging must not change the traffic accounting"
        );
        assert_eq!(
            dst_a.snapshot(),
            dst_b.snapshot(),
            "span staging must be bitwise-transparent"
        );
    }
}
