//! Finite-difference inlet/outlet kernels for both representations.
//!
//! The FD condition (lbm-core's `boundary_node_moments`) queries macroscopic
//! values at a small stencil of interior nodes. Inside a kernel those
//! queries must go through counted reads, so the kernels pre-read the
//! stencil into a [`MacroCache`] and hand the boundary routine a lookup
//! closure.

use lbm_core::geometry::{Geometry, NodeType};

/// A coordinate and its macroscopic state.
type MacroEntry = ((usize, usize, usize), (f64, [f64; 3]));

/// Small coordinate-keyed cache of `(ρ, u)` values pre-read by a kernel.
#[derive(Clone, Debug, Default)]
pub struct MacroCache {
    items: Vec<MacroEntry>,
}

impl MacroCache {
    /// Empty cache with room for a boundary stencil.
    pub fn new() -> Self {
        MacroCache {
            items: Vec::with_capacity(8),
        }
    }

    /// Record the macro state at a coordinate (duplicates are fine; first
    /// match wins).
    pub fn insert(&mut self, xyz: (usize, usize, usize), rho: f64, u: [f64; 3]) {
        self.items.push((xyz, (rho, u)));
    }

    /// Look up a pre-read value; panics if the stencil enumeration missed a
    /// coordinate (a bug in [`stencil_coords`]).
    pub fn lookup(&self, x: usize, y: usize, z: usize) -> (f64, [f64; 3]) {
        for (k, v) in &self.items {
            if *k == (x, y, z) {
                return *v;
            }
        }
        panic!("macro stencil missing ({x},{y},{z})");
    }
}

/// Enumerate every interior coordinate the FD boundary condition may query
/// for the boundary node at `(x, y, z)`: the two nodes along the inward
/// normal, plus — for each tangential neighbor that is itself an outlet —
/// that neighbor's first interior node (its extrapolation source).
pub fn stencil_coords(geom: &Geometry, x: usize, y: usize, z: usize) -> Vec<(usize, usize, usize)> {
    let s: i64 = if x == 0 { 1 } else { -1 };
    let x1 = (x as i64 + s) as usize;
    let x2 = (x as i64 + 2 * s) as usize;
    let mut out = vec![(x1, y, z), (x2, y, z)];
    let mut tangent = |tx: usize, ty: usize, tz: usize| {
        if matches!(geom.node(tx, ty, tz), NodeType::Outlet(_)) {
            out.push((x1, ty, tz));
        }
    };
    if y + 1 < geom.ny {
        tangent(x, y + 1, z);
    }
    if y > 0 {
        tangent(x, y - 1, z);
    }
    if geom.nz > 1 {
        if z + 1 < geom.nz {
            tangent(x, y, z + 1);
        }
        if z > 0 {
            tangent(x, y, z - 1);
        }
    }
    out
}

/// Mark the nodes eligible for the branchless interior-scatter fast path:
/// fluid, away from the x faces (so no periodic wrap enters the destination
/// arithmetic), and with every streaming neighbor in-domain and non-solid.
/// For such a node the per-direction scatter never bounces, clips, or
/// wraps — all `Q` destination slots are plain stores at offsets that are
/// constant along an x run, which the column kernels precompute per
/// segment.
pub fn bulk_mask<L: lbm_lattice::Lattice>(geom: &Geometry) -> Vec<bool> {
    let (nx, ny, nz) = (geom.nx, geom.ny, geom.nz);
    let mut mask = vec![false; geom.len()];
    for (idx, m) in mask.iter_mut().enumerate() {
        let (x, y, z) = geom.coords(idx);
        if geom.node_at(idx).is_solid() || x == 0 || x + 1 >= nx {
            continue;
        }
        *m = (0..L::Q).all(|i| {
            let c = L::C[i];
            let xd = x as i64 + c[0] as i64;
            let yd = y as i64 + c[1] as i64;
            let zd = z as i64 + c[2] as i64;
            xd >= 0
                && xd < nx as i64
                && yd >= 0
                && yd < ny as i64
                && zd >= 0
                && zd < nz as i64
                && !geom.node(xd as usize, yd as usize, zd as usize).is_solid()
        });
    }
    mask
}

/// Flat indices of all inlet/outlet nodes of a geometry, with coordinates.
pub fn boundary_nodes(geom: &Geometry) -> Vec<(usize, usize, usize)> {
    let mut out = Vec::new();
    for idx in 0..geom.len() {
        if matches!(geom.node_at(idx), NodeType::Inlet(_) | NodeType::Outlet(_)) {
            out.push(geom.coords(idx));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_lookup() {
        let mut c = MacroCache::new();
        c.insert((1, 2, 0), 1.05, [0.1, 0.0, 0.0]);
        c.insert((2, 2, 0), 1.01, [0.2, 0.0, 0.0]);
        assert_eq!(c.lookup(2, 2, 0).0, 1.01);
        assert_eq!(c.lookup(1, 2, 0).1[0], 0.1);
    }

    #[test]
    #[should_panic(expected = "stencil missing")]
    fn cache_miss_panics() {
        let c = MacroCache::new();
        let _ = c.lookup(0, 0, 0);
    }

    #[test]
    fn inlet_stencil_is_two_normals() {
        let g = Geometry::channel_2d(12, 8, 0.05);
        let s = stencil_coords(&g, 0, 3, 0);
        // Inlet tangential neighbors are inlets, not outlets → no extras.
        assert_eq!(s, vec![(1, 3, 0), (2, 3, 0)]);
    }

    #[test]
    fn outlet_stencil_includes_tangential_sources() {
        let g = Geometry::channel_2d(12, 8, 0.05);
        let s = stencil_coords(&g, 11, 3, 0);
        assert!(s.contains(&(10, 3, 0)));
        assert!(s.contains(&(9, 3, 0)));
        // Tangential outlet neighbors at y±1 add their interior sources.
        assert!(s.contains(&(10, 4, 0)));
        assert!(s.contains(&(10, 2, 0)));
    }

    #[test]
    fn boundary_list_covers_both_faces() {
        let g = Geometry::channel_2d(12, 8, 0.05);
        let list = boundary_nodes(&g);
        // 6 interior rows on each face.
        assert_eq!(list.len(), 12);
        assert!(list.iter().all(|&(x, _, _)| x == 0 || x == 11));
    }
}
