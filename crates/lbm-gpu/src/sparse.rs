//! Indirect-addressing (sparse) variant of the ST pattern.
//!
//! The paper's roofline tables are computed "using direct addressing"
//! (Table 3 caption): every node of the bounding box is stored, and
//! neighbors are found arithmetically. For complex geometries the
//! alternative — analyzed in the paper's refs. \[4\] (Herschlag et al.) and
//! \[15\] — is *indirect addressing*: only fluid nodes are stored,
//! compacted, and each node carries an explicit neighbor list.
//!
//! Consequences reproduced here:
//!
//! * memory scales with the *fluid* count, not the bounding box — a porous
//!   or obstacle-laden domain stores no solid nodes;
//! * each update must additionally read its neighbor indices: B/F grows
//!   from `2Q·8` to `2Q·8 + Q·4` (a `u32` per direction), e.g. 380 instead
//!   of 304 for D3Q19 — the measured penalty of indirect addressing;
//! * bounce-back is precompiled into the neighbor table (a link to the
//!   node's own opposite slot), so the kernel has no geometry branches.
//!
//! Compact ids are assigned **tile by tile** (fixed-size spatial tiles,
//! one GPU block per tile, with a per-tile active list): fluid nodes that
//! are spatial neighbors land in nearby compact slots, so the link table
//! and the gather stay cache-coherent instead of striding the whole
//! domain. The tile decomposition also gives the sharded drivers a
//! natural per-tile halo-exchange granularity.
//!
//! Moving walls are not supported by the precompiled table (the gain term
//! depends on the wall velocity); domains are restricted to
//! `Wall`/`Fluid`/periodic, which covers the obstacle benchmarks. Build
//! errors surface as [`SparseBuildError`] through the fallible
//! constructors (`try_new`), so a service front-end can reject a bad
//! geometry instead of catching a panic.

use gpu_sim::exec::{BlockCtx, Kernel, Launch};
use gpu_sim::memory::Tally;
use gpu_sim::{DeviceSpec, GlobalBuffer, Gpu};
use lbm_core::collision::Collision;
use lbm_core::geometry::{Geometry, NodeType};
use lbm_lattice::moments::Moments;
use lbm_lattice::Lattice;
use std::marker::PhantomData;
use std::sync::Arc;

const MAX_Q: usize = 48;

/// Why a sparse driver could not be built from a geometry. Each variant is
/// a *user input* problem, not a programming error — the service layer
/// maps these onto submission rejections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseBuildError {
    /// The geometry contains a node type the precompiled bounce-back table
    /// cannot express (inlet, outlet, or moving wall).
    UnsupportedNode(String),
    /// The geometry has no fluid nodes at all — nothing to simulate.
    NoFluidNodes,
    /// More fluid nodes than the u32 link encoding can address.
    TableOverflow(String),
}

impl std::fmt::Display for SparseBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparseBuildError::UnsupportedNode(node) => write!(
                f,
                "sparse drivers support only fluid and resting-wall nodes (found {node})"
            ),
            SparseBuildError::NoFluidNodes => write!(f, "sparse domain has no fluid nodes"),
            SparseBuildError::TableOverflow(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for SparseBuildError {}

/// Check that every node of `geom` is expressible by the precompiled
/// bounce-back table (fluid or resting wall only).
pub fn validate_sparse_geometry(geom: &Geometry) -> Result<(), SparseBuildError> {
    for idx in 0..geom.len() {
        match geom.node_at(idx) {
            NodeType::Fluid | NodeType::Wall => {}
            other => return Err(SparseBuildError::UnsupportedNode(format!("{other:?}"))),
        }
    }
    Ok(())
}

/// One spatial tile of the compaction: compact ids `lo..hi` are stored
/// contiguously, and `active` lists the ids this tile *updates* (in the
/// single-device drivers that is all of them; the sharded drivers drop
/// ghost-column nodes from the active list while keeping their storage).
#[derive(Clone, Debug)]
pub struct Tile {
    /// First compact id stored in this tile.
    pub lo: u32,
    /// One past the last compact id stored in this tile.
    pub hi: u32,
    /// Compact ids updated by this tile's block.
    pub active: Vec<u32>,
}

/// Compacted fluid-node indexing for a geometry, tiled for cache
/// coherence: ids are assigned tile-by-tile, so a block's gather footprint
/// is spatially local.
pub struct FluidIndex {
    /// Flat domain index of each fluid node (compact id → domain).
    pub nodes: Vec<usize>,
    /// Domain index → compact id (usize::MAX for solid).
    pub compact: Vec<usize>,
    tiles: Vec<Tile>,
    tile_shape: (usize, usize, usize),
}

impl FluidIndex {
    /// Default tile shape: 8×8 squares in 2D, 4×4×4 cubes in 3D.
    pub fn default_tile_shape(geom: &Geometry) -> (usize, usize, usize) {
        if geom.nz == 1 {
            (8, 8, 1)
        } else {
            (4, 4, 4)
        }
    }

    /// Build the compaction for all fluid-like nodes of `geom` with the
    /// default tile shape.
    pub fn build(geom: &Geometry) -> Self {
        Self::build_tiled(geom, Self::default_tile_shape(geom))
    }

    /// Build the compaction with an explicit tile shape. Tiles are walked
    /// in z-major grid order and nodes within a tile in domain order, so
    /// the id assignment is deterministic. Empty tiles (no fluid) are
    /// dropped — the launch grid covers only populated tiles.
    pub fn build_tiled(geom: &Geometry, shape: (usize, usize, usize)) -> Self {
        let (tw, th, td) = shape;
        assert!(tw > 0 && th > 0 && td > 0, "tile dimensions must be ≥ 1");
        let mut nodes = Vec::new();
        let mut compact = vec![usize::MAX; geom.len()];
        let mut tiles = Vec::new();
        for tz in 0..geom.nz.div_ceil(td) {
            for ty in 0..geom.ny.div_ceil(th) {
                for tx in 0..geom.nx.div_ceil(tw) {
                    let lo = nodes.len() as u32;
                    let mut active = Vec::new();
                    for z in tz * td..((tz + 1) * td).min(geom.nz) {
                        for y in ty * th..((ty + 1) * th).min(geom.ny) {
                            for x in tx * tw..((tx + 1) * tw).min(geom.nx) {
                                let idx = geom.idx(x, y, z);
                                if geom.node_at(idx).is_fluid_like() {
                                    compact[idx] = nodes.len();
                                    active.push(nodes.len() as u32);
                                    nodes.push(idx);
                                }
                            }
                        }
                    }
                    let hi = nodes.len() as u32;
                    if hi > lo {
                        tiles.push(Tile { lo, hi, active });
                    }
                }
            }
        }
        FluidIndex {
            nodes,
            compact,
            tiles,
            tile_shape: shape,
        }
    }

    /// Number of fluid nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the domain has no fluid nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The populated tiles (one GPU block each).
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// The tile shape this index was built with.
    pub fn tile_shape(&self) -> (usize, usize, usize) {
        self.tile_shape
    }

    /// Largest per-tile storage span — the shared/scratch slab stride of
    /// the tile kernels.
    pub fn tile_capacity(&self) -> usize {
        self.tiles
            .iter()
            .map(|t| (t.hi - t.lo) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Total nodes on all active lists (= updates per step).
    pub fn active_len(&self) -> usize {
        self.tiles.iter().map(|t| t.active.len()).sum()
    }

    /// Drop nodes from the active lists (they stay stored and gatherable).
    /// The sharded drivers use this to exclude ghost-column nodes, which
    /// receive their values by halo exchange instead of local update.
    pub fn retain_active(&mut self, keep: impl Fn(usize) -> bool) {
        for tile in &mut self.tiles {
            tile.active.retain(|&cid| keep(self.nodes[cid as usize]));
        }
        self.tiles.retain(|t| !t.active.is_empty());
    }
}

/// Largest fluid count a `q`-direction lattice can index through the `u32`
/// neighbor table: every entry `dir · nf + compact_id` with `dir < q` and
/// `compact_id < nf` must fit, so `q · nf − 1 ≤ u32::MAX`.
pub fn max_encodable_fluid_nodes(q: usize) -> usize {
    (u32::MAX as usize + 1) / q
}

/// Validate that `nf` fluid nodes are encodable for a `q`-direction
/// lattice. Returns a descriptive error instead of letting the `as u32`
/// casts in the table build silently truncate — a truncated link makes the
/// gather read the wrong node with no diagnostic at all.
pub fn check_table_encoding(q: usize, nf: usize) -> Result<(), String> {
    let max = max_encodable_fluid_nodes(q);
    if nf > max {
        return Err(format!(
            "sparse neighbor table overflow: {nf} fluid nodes × {q} directions \
             exceeds the u32 entry range (max {max} nodes for Q={q}); \
             the encoded links would silently truncate"
        ));
    }
    Ok(())
}

/// Build the pull neighbor table: entry `(i, n)` is the compact slot whose
/// direction-`i` population node `n` gathers — either the fluid neighbor at
/// `n − c_i`, or `n` itself with the opposite direction for bounce-back.
/// Entries are encoded as `dir · nf + compact_id`, one `u32` per link.
pub fn build_neighbor_table<L: Lattice>(
    geom: &Geometry,
    index: &FluidIndex,
) -> Result<Vec<u32>, SparseBuildError> {
    let nf = index.len();
    check_table_encoding(L::Q, nf).map_err(SparseBuildError::TableOverflow)?;
    let mut table = vec![0u32; L::Q * nf];
    for (cid, &idx) in index.nodes.iter().enumerate() {
        let (x, y, z) = geom.coords(idx);
        for i in 0..L::Q {
            let c = L::C[i];
            let entry = match geom.neighbor(x, y, z, [-c[0], -c[1], -c[2]]) {
                Some((px, py, pz)) => {
                    let nidx = geom.idx(px, py, pz);
                    match geom.node_at(nidx) {
                        t if t.is_fluid_like() => (i * nf + index.compact[nidx]) as u32,
                        NodeType::Wall => (L::OPP[i] * nf + cid) as u32,
                        other => {
                            return Err(SparseBuildError::UnsupportedNode(format!("{other:?}")))
                        }
                    }
                }
                None => (L::OPP[i] * nf + cid) as u32,
            };
            table[i * nf + cid] = entry;
        }
    }
    Ok(table)
}

/// Bulk kernel: pull through the neighbor table, collide, write. One block
/// per tile; the block walks its tile's active list.
struct SparseKernel<'a, L: Lattice, C: Collision<L>> {
    src: &'a GlobalBuffer<f64>,
    dst: &'a GlobalBuffer<f64>,
    table: &'a GlobalBuffer<u32>,
    tiles: &'a [Tile],
    nf: usize,
    collision: &'a C,
    _l: PhantomData<L>,
}

impl<L: Lattice, C: Collision<L>> Kernel for SparseKernel<'_, L, C> {
    fn name(&self) -> &str {
        "st-sparse"
    }

    fn run_block(&self, ctx: &mut BlockCtx) {
        let tile = &self.tiles[ctx.block_id];
        let mut f_loc = [0.0f64; MAX_Q];
        for &cid in &tile.active {
            let cid = cid as usize;
            for i in 0..L::Q {
                // Indirect gather: one u32 link read + one f64 read.
                let link = ctx.read(self.table, i * self.nf + cid) as usize;
                f_loc[i] = ctx.read(self.src, link);
            }
            self.collision.collide(&mut f_loc[..L::Q]);
            for i in 0..L::Q {
                ctx.write(self.dst, i * self.nf + cid, f_loc[i]);
            }
        }
    }
}

/// Launch the sparse pull-collide kernel over every tile of `index`
/// (one block per tile). `src` is read through `table`'s links, collided
/// populations land in `dst`. The sharded drivers call this per shard with
/// ghost-filtered active lists; [`StSparseSim::step`] calls it with every
/// node active.
pub fn launch_sparse_st<L: Lattice, C: Collision<L>>(
    gpu: &Gpu,
    src: &GlobalBuffer<f64>,
    dst: &GlobalBuffer<f64>,
    table: &GlobalBuffer<u32>,
    index: &FluidIndex,
    collision: &C,
) -> gpu_sim::exec::LaunchStats {
    let tiles = index.tiles();
    let threads = index.tile_capacity().max(1);
    gpu.launch(
        &Launch::simple(tiles.len(), threads),
        &SparseKernel::<L, C> {
            src,
            dst,
            table,
            tiles,
            nf: index.len(),
            collision,
            _l: PhantomData,
        },
    )
}

/// Driver for the indirect-addressing ST simulation.
pub struct StSparseSim<L: Lattice, C: Collision<L>> {
    gpu: Gpu,
    geom: Geometry,
    index: FluidIndex,
    table: GlobalBuffer<u32>,
    f: [GlobalBuffer<f64>; 2],
    cur: usize,
    collision: C,
    steps: u64,
    accum: Tally,
    obs: Option<Arc<obs::Obs>>,
    monitor: Option<obs::PhysicsMonitor>,
    _l: PhantomData<L>,
}

impl<L: Lattice, C: Collision<L>> StSparseSim<L, C> {
    /// Build a sparse simulation, panicking on an unsupported geometry.
    /// Use [`StSparseSim::try_new`] where build failures must be handled
    /// (the service layer rejects them as submission errors).
    pub fn new(device: DeviceSpec, geom: Geometry, collision: C) -> Self {
        Self::try_new(device, geom, collision).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build a sparse simulation. The geometry may contain only
    /// fluid/wall/periodic nodes (no inlet/outlet/moving walls).
    pub fn try_new(
        device: DeviceSpec,
        geom: Geometry,
        collision: C,
    ) -> Result<Self, SparseBuildError> {
        validate_sparse_geometry(&geom)?;
        let index = FluidIndex::build(&geom);
        if index.is_empty() {
            return Err(SparseBuildError::NoFluidNodes);
        }
        let table =
            GlobalBuffer::from_vec(build_neighbor_table::<L>(&geom, &index)?).with_touch_tracking();
        let nf = index.len();
        let mut sim = StSparseSim {
            gpu: Gpu::new(device),
            geom,
            index,
            table,
            f: [
                GlobalBuffer::new(L::Q * nf).with_touch_tracking(),
                GlobalBuffer::new(L::Q * nf).with_touch_tracking(),
            ],
            cur: 0,
            collision,
            steps: 0,
            accum: Tally::default(),
            obs: None,
            monitor: None,
            _l: PhantomData,
        };
        sim.init_with(|_, _, _| (1.0, [0.0; 3]));
        Ok(sim)
    }

    /// Limit the CPU worker threads backing the substrate.
    pub fn with_cpu_threads(mut self, n: usize) -> Self {
        self.gpu = self.gpu.with_cpu_threads(n);
        self
    }

    /// Override the minimum launch size dispatched to the worker pool
    /// (see `gpu_sim::Gpu::with_parallel_threshold`); `0` forces pooling
    /// for every multi-block launch.
    pub fn with_parallel_threshold(mut self, items: usize) -> Self {
        self.gpu = self.gpu.with_parallel_threshold(items);
        self
    }

    /// Route injected faults through the substrate and both lattices.
    pub fn with_fault_plan(mut self, plan: Arc<gpu_sim::FaultPlan>) -> Self {
        self.gpu.set_fault_plan(plan.clone());
        self.f[0].set_fault_plan(plan.clone());
        self.f[1].set_fault_plan(plan);
        self
    }

    /// Attach an observability hub (kernel spans, monitor gauges).
    pub fn with_obs(mut self, obs: Arc<obs::Obs>) -> Self {
        self.set_obs(obs);
        self
    }

    /// Attach an observability hub after construction.
    pub fn set_obs(&mut self, obs: Arc<obs::Obs>) {
        self.gpu.set_obs(obs.clone());
        self.obs = Some(obs);
    }

    /// Attribute subsequent spans and events to a fleet trace context.
    pub fn set_trace_ctx(&mut self, ctx: Option<obs::TraceCtx>) {
        self.gpu.set_trace_ctx(ctx);
    }

    /// Attach a physics monitor sampling the macroscopic fields.
    pub fn with_monitor(mut self, cfg: obs::MonitorConfig) -> Self {
        self.monitor = Some(obs::PhysicsMonitor::new(cfg));
        self
    }

    /// The attached physics monitor, if any.
    pub fn monitor(&self) -> Option<&obs::PhysicsMonitor> {
        self.monitor.as_ref()
    }

    /// Monitor/metric pattern label for this driver.
    pub fn pattern_label(&self) -> &'static str {
        "sparse-st"
    }

    /// Initialize to the operator-consistent equilibrium of a field.
    pub fn init_with(&mut self, field: impl Fn(usize, usize, usize) -> (f64, [f64; 3])) {
        let nf = self.index.len();
        let mut feq = [0.0f64; MAX_Q];
        for (cid, &idx) in self.index.nodes.iter().enumerate() {
            let (x, y, z) = self.geom.coords(idx);
            let (rho, u) = field(x, y, z);
            let m = Moments {
                rho,
                u,
                pi: Moments::pi_eq(rho, u, L::D),
            };
            self.collision.reconstruct(&m, &mut feq[..L::Q]);
            for i in 0..L::Q {
                self.f[self.cur].set(i * nf + cid, feq[i]);
            }
        }
        self.steps = 0;
        self.accum = Tally::default();
    }

    /// Advance one timestep.
    pub fn step(&mut self) {
        let obs = self.obs.clone();
        let _step_span = obs.as_ref().map(|o| {
            let mut args = vec![("t", self.steps.to_string())];
            if let Some(ctx) = self.gpu.trace_ctx() {
                ctx.append_args(&mut args);
            }
            o.tracer.span_args("driver", "step", &args)
        });
        let (src, dst) = (&self.f[self.cur], &self.f[self.cur ^ 1]);
        let stats = launch_sparse_st::<L, C>(
            &self.gpu,
            src,
            dst,
            &self.table,
            &self.index,
            &self.collision,
        );
        self.accum.merge(&stats.tally);
        self.cur ^= 1;
        self.steps += 1;
        self.sample_monitor();
    }

    /// Cadence-gated monitor sampling.
    fn sample_monitor(&mut self) {
        if !self.monitor.as_ref().is_some_and(|m| m.due(self.steps)) {
            return;
        }
        let (rho, u) = self.macro_fields();
        let s = self.monitor.as_mut().unwrap().observe(self.steps, &rho, &u);
        if let Some(o) = &self.obs {
            let pat = self.pattern_label();
            o.metrics
                .gauge_set("monitor_mass", &[("pattern", pat)], s.mass);
            o.metrics
                .gauge_set("monitor_max_u", &[("pattern", pat)], s.max_u);
            if s.nonfinite > 0 {
                o.tracer.instant(
                    "monitor",
                    "nonfinite",
                    &[
                        ("step", s.step.to_string()),
                        ("count", s.nonfinite.to_string()),
                    ],
                );
            }
        }
    }

    /// Force a final monitor sample at the current step.
    pub fn finish_monitor(&mut self) {
        if self.monitor.is_none() {
            return;
        }
        let (rho, u) = self.macro_fields();
        let s = self.monitor.as_mut().unwrap().finish(self.steps, &rho, &u);
        if let (Some(s), Some(o)) = (s, &self.obs) {
            let pat = self.pattern_label();
            o.metrics
                .gauge_set("monitor_mass", &[("pattern", pat)], s.mass);
            o.metrics
                .gauge_set("monitor_max_u", &[("pattern", pat)], s.max_u);
            o.tracer
                .instant("monitor", "flush", &[("step", s.step.to_string())]);
        }
    }

    /// Advance `steps` timesteps, then flush the monitor.
    pub fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
        self.finish_monitor();
    }

    /// Completed timesteps.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Domain geometry.
    pub fn geom(&self) -> &Geometry {
        &self.geom
    }

    /// The fluid-node compaction.
    pub fn index(&self) -> &FluidIndex {
        &self.index
    }

    /// Aggregate traffic over all steps so far.
    pub fn traffic(&self) -> Tally {
        self.accum
    }

    /// Measured DRAM bytes per fluid update — `2Q·8 + Q·4` for the link
    /// reads (the indirect-addressing penalty). Zero before the first step
    /// (no updates have happened, so there is no per-update ratio yet).
    pub fn measured_bpf(&self) -> f64 {
        let updates = self.index.len() as u64 * self.steps;
        if updates == 0 {
            return 0.0;
        }
        self.accum.dram_bytes() as f64 / updates as f64
    }

    /// Device-memory footprint: two compacted lattices plus the link table.
    /// Scales with the fluid count, not the bounding box.
    pub fn footprint_bytes(&self) -> usize {
        self.f[0].size_bytes() + self.f[1].size_bytes() + self.table.size_bytes()
    }

    /// Serialize the full solver state (LBCK flavor `"sparse-st"`): the
    /// current compacted lattice plus the traffic tally, restorable on an
    /// identically configured simulation for bitwise-identical resumption.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut w = lbm_core::io::CheckpointWriter::new("sparse-st");
        w.put_u64(self.geom.nx as u64)
            .put_u64(self.geom.ny as u64)
            .put_u64(self.geom.nz as u64)
            .put_u64(L::Q as u64)
            .put_u64(self.index.len() as u64)
            .put_u64(self.steps)
            .put_u64(self.accum.reads)
            .put_u64(self.accum.writes)
            .put_u64(self.accum.bytes_read)
            .put_u64(self.accum.bytes_written)
            .put_u64(self.accum.dram_bytes_read)
            .put_u64(self.accum.l2_read_hits)
            .put_f64s(&self.f[self.cur].snapshot());
        w.finish()
    }

    /// Restore a [`StSparseSim::checkpoint`] snapshot.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), lbm_core::io::CheckpointError> {
        use lbm_core::io::CheckpointReader;
        let mut r = CheckpointReader::open(bytes, "sparse-st")?;
        r.expect_u64(self.geom.nx as u64, "nx")?;
        r.expect_u64(self.geom.ny as u64, "ny")?;
        r.expect_u64(self.geom.nz as u64, "nz")?;
        r.expect_u64(L::Q as u64, "Q")?;
        r.expect_u64(self.index.len() as u64, "fluid nodes")?;
        let t = r.take_u64()?;
        self.accum = Tally {
            reads: r.take_u64()?,
            writes: r.take_u64()?,
            bytes_read: r.take_u64()?,
            bytes_written: r.take_u64()?,
            dram_bytes_read: r.take_u64()?,
            l2_read_hits: r.take_u64()?,
        };
        let raw = r.take_f64s(self.f[0].len())?;
        for (i, v) in raw.iter().enumerate() {
            self.f[0].set(i, *v);
        }
        self.cur = 0;
        self.steps = t;
        if let Some(m) = self.monitor.as_mut() {
            m.rollback_to(self.steps);
        }
        Ok(())
    }

    /// FNV-1a fingerprint of the macroscopic fields (bitwise-sensitive).
    pub fn field_checksum(&self) -> u64 {
        let (rho, u) = self.macro_fields();
        lbm_core::io::field_checksum(&rho, &u)
    }

    /// Density and velocity fields on the full domain in one pass (solid
    /// nodes report zero). This is what the physics monitor samples.
    pub fn macro_fields(&self) -> (Vec<f64>, Vec<[f64; 3]>) {
        let nf = self.index.len();
        let mut rho_out = vec![0.0; self.geom.len()];
        let mut u_out = vec![[0.0; 3]; self.geom.len()];
        let mut f_loc = [0.0f64; MAX_Q];
        for (cid, &idx) in self.index.nodes.iter().enumerate() {
            for i in 0..L::Q {
                f_loc[i] = self.f[self.cur].get(i * nf + cid);
            }
            let m = Moments::from_f::<L>(&f_loc[..L::Q]);
            rho_out[idx] = m.rho;
            u_out[idx] = m.u;
        }
        (rho_out, u_out)
    }

    /// Velocity field on the full domain (solid nodes report zero).
    pub fn velocity_field(&self) -> Vec<[f64; 3]> {
        self.macro_fields().1
    }

    /// Density field on the full domain.
    pub fn density_field(&self) -> Vec<f64> {
        self.macro_fields().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbm_core::collision::{Bgk, Projective};
    use lbm_core::Solver;
    use lbm_lattice::{D2Q9, D3Q19};

    #[test]
    fn compaction_counts_fluid_only() {
        let geom = Geometry::walls_y_periodic_x(12, 8).with_cylinder(6.0, 4.0, 2.0);
        let index = FluidIndex::build(&geom);
        assert_eq!(index.len(), geom.fluid_count());
        // Round trip compact ↔ domain.
        for (cid, &idx) in index.nodes.iter().enumerate() {
            assert_eq!(index.compact[idx], cid);
        }
    }

    /// The tiled id assignment covers 0..nf exactly once, tiles are
    /// disjoint contiguous spans, and every node starts active.
    #[test]
    fn tiles_partition_the_compaction() {
        let geom = Geometry::walls_y_periodic_x(20, 14).with_cylinder(9.0, 7.0, 3.0);
        let index = FluidIndex::build(&geom);
        let mut next = 0u32;
        let mut active_total = 0;
        for tile in index.tiles() {
            assert_eq!(tile.lo, next, "tiles must be contiguous spans");
            assert!(tile.hi > tile.lo);
            for (k, &cid) in tile.active.iter().enumerate() {
                assert_eq!(cid, tile.lo + k as u32, "all nodes active by default");
            }
            active_total += tile.active.len();
            next = tile.hi;
        }
        assert_eq!(next as usize, index.len());
        assert_eq!(active_total, index.len());
        assert_eq!(index.active_len(), index.len());
        assert!(index.tile_capacity() <= 8 * 8);
    }

    /// Sparse ST matches the dense reference on an obstacle-laden domain.
    #[test]
    fn matches_dense_reference_with_obstacle() {
        let geom = Geometry::walls_y_periodic_x(16, 10).with_cylinder(6.0, 5.0, 2.0);
        let init =
            |_x: usize, y: usize, _z: usize| (1.0, [0.03 * (y as f64 * 0.6).sin(), 0.0, 0.0]);
        let mut sparse: StSparseSim<D2Q9, _> =
            StSparseSim::new(DeviceSpec::v100(), geom.clone(), Projective::new(0.8))
                .with_cpu_threads(2);
        sparse.init_with(init);
        let mut dense: Solver<D2Q9, _> = Solver::new(geom, Projective::new(0.8)).with_threads(2);
        dense.init_with(init);
        sparse.run(15);
        dense.run(15);
        let (us, ud) = (sparse.velocity_field(), dense.velocity_field());
        for (a, b) in us.iter().zip(&ud) {
            for k in 0..3 {
                assert!((a[k] - b[k]).abs() < 1e-12, "{a:?} vs {b:?}");
            }
        }
    }

    /// The indirect-addressing B/F penalty: 2Q·8 + Q·4 per update
    /// (304 + 76 = 380 for D3Q19; 144 + 36 = 180 for D2Q9).
    #[test]
    fn measured_bpf_includes_link_reads() {
        let geom = Geometry::walls_y_periodic_x(24, 12);
        let mut s2: StSparseSim<D2Q9, _> =
            StSparseSim::new(DeviceSpec::v100(), geom, Bgk::new(0.8)).with_cpu_threads(2);
        s2.run(3);
        assert!(
            (s2.measured_bpf() - 180.0).abs() < 1.0,
            "{}",
            s2.measured_bpf()
        );

        let mut g3 = Geometry::new(10, 8, 8, [true, false, false]);
        for z in 0..8 {
            for x in 0..10 {
                g3.set(x, 0, z, NodeType::Wall);
                g3.set(x, 7, z, NodeType::Wall);
            }
        }
        for y in 0..8 {
            for x in 0..10 {
                g3.set(x, y, 0, NodeType::Wall);
                g3.set(x, y, 7, NodeType::Wall);
            }
        }
        let mut s3: StSparseSim<D3Q19, _> =
            StSparseSim::new(DeviceSpec::v100(), g3, Bgk::new(0.8)).with_cpu_threads(2);
        s3.run(2);
        assert!(
            (s3.measured_bpf() - 380.0).abs() < 1.0,
            "{}",
            s3.measured_bpf()
        );
    }

    /// Regression for the 0/0 NaN: before any step there are zero updates,
    /// so the per-update ratio must report 0, not NaN.
    #[test]
    fn measured_bpf_is_zero_before_first_step() {
        let geom = Geometry::walls_y_periodic_x(12, 8);
        let s: StSparseSim<D2Q9, _> = StSparseSim::new(DeviceSpec::v100(), geom, Bgk::new(0.8));
        assert_eq!(s.measured_bpf(), 0.0);
        assert!(s.measured_bpf().is_finite());
        // The footprint is well-defined at t = 0 (it is static storage).
        assert!(s.footprint_bytes() > 0);
    }

    /// Sparse storage beats dense on porous domains: with half the box
    /// solid, the footprint is roughly halved (plus the link table).
    #[test]
    fn footprint_scales_with_fluid_count() {
        let mut geom = Geometry::walls_y_periodic_x(32, 32);
        // Solid lower half.
        for y in 1..16 {
            for x in 0..32 {
                geom.set(x, y, 0, NodeType::Wall);
            }
        }
        let sparse: StSparseSim<D2Q9, _> =
            StSparseSim::new(DeviceSpec::v100(), geom.clone(), Bgk::new(0.8));
        let dense_bytes = 2 * 9 * geom.len() * 8;
        // fluid ≈ half the box; sparse ≈ half the f storage + 25% links.
        assert!(sparse.footprint_bytes() < (dense_bytes as f64 * 0.65) as usize);
    }

    /// The satellite fix: the u32 table encoding has a hard node-count
    /// ceiling per lattice, checked at build time with a clear error.
    /// (Allocating 2³²⁄Q nodes is infeasible in a unit test, so the bound
    /// check is exercised directly with synthetic counts.)
    #[test]
    fn table_encoding_bound_is_exact() {
        for q in [9usize, 19, 27] {
            let max = max_encodable_fluid_nodes(q);
            // Largest encodable entry fits in u32…
            assert!(q * max - 1 <= u32::MAX as usize);
            // …and one more node would overflow.
            assert!(q * (max + 1) - 1 > u32::MAX as usize);
            assert!(check_table_encoding(q, max).is_ok());
            let err = check_table_encoding(q, max + 1).unwrap_err();
            assert!(err.contains("overflow"), "{err}");
            assert!(err.contains(&format!("Q={q}")), "{err}");
        }
        // D3Q19 at the paper's production scales: 226 million fluid nodes
        // ((2³²)/19) is the ceiling — a 620³ box exceeds it.
        assert_eq!(max_encodable_fluid_nodes(19), 226_050_910);
        assert!(check_table_encoding(19, 620 * 620 * 620).is_err());
    }

    #[test]
    #[should_panic(expected = "only fluid and resting-wall")]
    fn rejects_inlets() {
        let geom = Geometry::channel_2d(12, 8, 0.04);
        let _ = StSparseSim::<D2Q9, _>::new(DeviceSpec::v100(), geom, Bgk::new(0.8));
    }

    /// The satellite fix: the same rejection is a typed error through the
    /// fallible constructor — no panic for the service layer to catch.
    #[test]
    fn try_new_surfaces_typed_errors() {
        let geom = Geometry::channel_2d(12, 8, 0.04);
        let err = StSparseSim::<D2Q9, Bgk>::try_new(DeviceSpec::v100(), geom, Bgk::new(0.8))
            .err()
            .expect("inlet geometry must be rejected");
        assert!(
            matches!(err, SparseBuildError::UnsupportedNode(_)),
            "{err:?}"
        );
        assert!(err.to_string().contains("only fluid and resting-wall"));

        let mut all_solid = Geometry::periodic_2d(6, 6);
        for y in 0..6 {
            for x in 0..6 {
                all_solid.set(x, y, 0, NodeType::Wall);
            }
        }
        let err = StSparseSim::<D2Q9, Bgk>::try_new(DeviceSpec::v100(), all_solid, Bgk::new(0.8))
            .err()
            .expect("all-solid geometry must be rejected");
        assert!(matches!(err, SparseBuildError::NoFluidNodes), "{err:?}");
    }

    /// LBCK round-trip: a restored run continues bitwise-identically.
    #[test]
    fn checkpoint_roundtrip_is_bitwise() {
        let geom = Geometry::walls_y_periodic_x(16, 10).with_cylinder(7.0, 5.0, 2.0);
        let init =
            |_x: usize, y: usize, _z: usize| (1.0, [0.02 * (y as f64 * 0.5).sin(), 0.0, 0.0]);
        let mk = || {
            let mut s: StSparseSim<D2Q9, _> =
                StSparseSim::new(DeviceSpec::v100(), geom.clone(), Projective::new(0.8))
                    .with_cpu_threads(1);
            s.init_with(init);
            s
        };
        let mut a = mk();
        a.run(4);
        let snap = a.checkpoint();
        a.run(5);

        let mut b = mk();
        b.restore(&snap).unwrap();
        assert_eq!(b.steps(), 4);
        b.run(5);
        assert_eq!(a.field_checksum(), b.field_checksum());
        // Mismatched flavor is refused.
        assert!(b.restore(b"LBCKgarbage").is_err());
    }
}
