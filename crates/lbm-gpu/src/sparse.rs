//! Indirect-addressing (sparse) variant of the ST pattern.
//!
//! The paper's roofline tables are computed "using direct addressing"
//! (Table 3 caption): every node of the bounding box is stored, and
//! neighbors are found arithmetically. For complex geometries the
//! alternative — analyzed in the paper's refs. \[4\] (Herschlag et al.) and
//! \[15\] — is *indirect addressing*: only fluid nodes are stored,
//! compacted, and each node carries an explicit neighbor list.
//!
//! Consequences reproduced here:
//!
//! * memory scales with the *fluid* count, not the bounding box — a porous
//!   or obstacle-laden domain stores no solid nodes;
//! * each update must additionally read its neighbor indices: B/F grows
//!   from `2Q·8` to `2Q·8 + Q·4` (a `u32` per direction), e.g. 380 instead
//!   of 304 for D3Q19 — the measured penalty of indirect addressing;
//! * bounce-back is precompiled into the neighbor table (a link to the
//!   node's own opposite slot), so the kernel has no geometry branches.
//!
//! Moving walls are not supported by the precompiled table (the gain term
//! depends on the wall velocity); domains are restricted to
//! `Wall`/`Fluid`/periodic, which covers the obstacle benchmarks.

use gpu_sim::exec::{BlockCtx, Kernel, Launch};
use gpu_sim::memory::Tally;
use gpu_sim::{DeviceSpec, GlobalBuffer, Gpu};
use lbm_core::collision::Collision;
use lbm_core::geometry::{Geometry, NodeType};
use lbm_lattice::moments::Moments;
use lbm_lattice::Lattice;
use std::marker::PhantomData;

const MAX_Q: usize = 48;

/// Compacted fluid-node indexing for a geometry.
pub struct FluidIndex {
    /// Flat domain index of each fluid node (compact id → domain).
    pub nodes: Vec<usize>,
    /// Domain index → compact id (usize::MAX for solid).
    pub compact: Vec<usize>,
}

impl FluidIndex {
    /// Build the compaction for all fluid-like nodes of `geom`.
    pub fn build(geom: &Geometry) -> Self {
        let mut nodes = Vec::new();
        let mut compact = vec![usize::MAX; geom.len()];
        for idx in 0..geom.len() {
            if geom.node_at(idx).is_fluid_like() {
                compact[idx] = nodes.len();
                nodes.push(idx);
            }
        }
        FluidIndex { nodes, compact }
    }

    /// Number of fluid nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the domain has no fluid nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Largest fluid count a `q`-direction lattice can index through the `u32`
/// neighbor table: every entry `dir · nf + compact_id` with `dir < q` and
/// `compact_id < nf` must fit, so `q · nf − 1 ≤ u32::MAX`.
pub fn max_encodable_fluid_nodes(q: usize) -> usize {
    (u32::MAX as usize + 1) / q
}

/// Validate that `nf` fluid nodes are encodable for a `q`-direction
/// lattice. Returns a descriptive error instead of letting the `as u32`
/// casts in the table build silently truncate — a truncated link makes the
/// gather read the wrong node with no diagnostic at all.
pub fn check_table_encoding(q: usize, nf: usize) -> Result<(), String> {
    let max = max_encodable_fluid_nodes(q);
    if nf > max {
        return Err(format!(
            "sparse neighbor table overflow: {nf} fluid nodes × {q} directions \
             exceeds the u32 entry range (max {max} nodes for Q={q}); \
             the encoded links would silently truncate"
        ));
    }
    Ok(())
}

/// Build the pull neighbor table: entry `(i, n)` is the compact slot whose
/// direction-`i` population node `n` gathers — either the fluid neighbor at
/// `n − c_i`, or `n` itself with the opposite direction for bounce-back.
/// Entries are encoded as `dir · nf + compact_id`, one `u32` per link.
fn build_neighbor_table<L: Lattice>(geom: &Geometry, index: &FluidIndex) -> Vec<u32> {
    let nf = index.len();
    check_table_encoding(L::Q, nf).unwrap_or_else(|e| panic!("{e}"));
    let mut table = vec![0u32; L::Q * nf];
    for (cid, &idx) in index.nodes.iter().enumerate() {
        let (x, y, z) = geom.coords(idx);
        for i in 0..L::Q {
            let c = L::C[i];
            let entry = match geom.neighbor(x, y, z, [-c[0], -c[1], -c[2]]) {
                Some((px, py, pz)) => {
                    let nidx = geom.idx(px, py, pz);
                    match geom.node_at(nidx) {
                        t if t.is_fluid_like() => (i * nf + index.compact[nidx]) as u32,
                        NodeType::Wall => (L::OPP[i] * nf + cid) as u32,
                        other => panic!("sparse ST does not support {other:?}"),
                    }
                }
                None => (L::OPP[i] * nf + cid) as u32,
            };
            table[i * nf + cid] = entry;
        }
    }
    table
}

/// Bulk kernel: pull through the neighbor table, collide, write.
struct SparseKernel<'a, L: Lattice, C: Collision<L>> {
    src: &'a GlobalBuffer<f64>,
    dst: &'a GlobalBuffer<f64>,
    table: &'a GlobalBuffer<u32>,
    nf: usize,
    collision: &'a C,
    block_size: usize,
    _l: PhantomData<L>,
}

impl<L: Lattice, C: Collision<L>> Kernel for SparseKernel<'_, L, C> {
    fn name(&self) -> &str {
        "st-sparse"
    }

    fn run_block(&self, ctx: &mut BlockCtx) {
        let base = ctx.block_id * self.block_size;
        let mut f_loc = [0.0f64; MAX_Q];
        for tid in 0..self.block_size {
            let cid = base + tid;
            if cid >= self.nf {
                break;
            }
            for i in 0..L::Q {
                // Indirect gather: one u32 link read + one f64 read.
                let link = ctx.read(self.table, i * self.nf + cid) as usize;
                f_loc[i] = ctx.read(self.src, link);
            }
            self.collision.collide(&mut f_loc[..L::Q]);
            for i in 0..L::Q {
                ctx.write(self.dst, i * self.nf + cid, f_loc[i]);
            }
        }
    }
}

/// Driver for the indirect-addressing ST simulation.
pub struct StSparseSim<L: Lattice, C: Collision<L>> {
    gpu: Gpu,
    geom: Geometry,
    index: FluidIndex,
    table: GlobalBuffer<u32>,
    f: [GlobalBuffer<f64>; 2],
    cur: usize,
    collision: C,
    block_size: usize,
    steps: u64,
    accum: Tally,
    _l: PhantomData<L>,
}

impl<L: Lattice, C: Collision<L>> StSparseSim<L, C> {
    /// Build a sparse simulation. The geometry may contain only
    /// fluid/wall/periodic nodes (no inlet/outlet/moving walls).
    pub fn new(device: DeviceSpec, geom: Geometry, collision: C) -> Self {
        for idx in 0..geom.len() {
            assert!(
                matches!(geom.node_at(idx), NodeType::Fluid | NodeType::Wall),
                "sparse ST supports only fluid and resting-wall nodes"
            );
        }
        let index = FluidIndex::build(&geom);
        assert!(!index.is_empty(), "no fluid nodes");
        let table =
            GlobalBuffer::from_vec(build_neighbor_table::<L>(&geom, &index)).with_touch_tracking();
        let nf = index.len();
        let mut sim = StSparseSim {
            gpu: Gpu::new(device),
            geom,
            index,
            table,
            f: [
                GlobalBuffer::new(L::Q * nf).with_touch_tracking(),
                GlobalBuffer::new(L::Q * nf).with_touch_tracking(),
            ],
            cur: 0,
            collision,
            block_size: 256,
            steps: 0,
            accum: Tally::default(),
            _l: PhantomData,
        };
        sim.init_with(|_, _, _| (1.0, [0.0; 3]));
        sim
    }

    /// Limit the CPU worker threads backing the substrate.
    pub fn with_cpu_threads(mut self, n: usize) -> Self {
        self.gpu = self.gpu.with_cpu_threads(n);
        self
    }

    /// Override the minimum launch size dispatched to the worker pool
    /// (see `gpu_sim::Gpu::with_parallel_threshold`); `0` forces pooling
    /// for every multi-block launch.
    pub fn with_parallel_threshold(mut self, items: usize) -> Self {
        self.gpu = self.gpu.with_parallel_threshold(items);
        self
    }

    /// Initialize to the operator-consistent equilibrium of a field.
    pub fn init_with(&mut self, field: impl Fn(usize, usize, usize) -> (f64, [f64; 3])) {
        let nf = self.index.len();
        let mut feq = [0.0f64; MAX_Q];
        for (cid, &idx) in self.index.nodes.iter().enumerate() {
            let (x, y, z) = self.geom.coords(idx);
            let (rho, u) = field(x, y, z);
            let m = Moments {
                rho,
                u,
                pi: Moments::pi_eq(rho, u, L::D),
            };
            self.collision.reconstruct(&m, &mut feq[..L::Q]);
            for i in 0..L::Q {
                self.f[self.cur].set(i * nf + cid, feq[i]);
            }
        }
        self.steps = 0;
        self.accum = Tally::default();
    }

    /// Advance one timestep.
    pub fn step(&mut self) {
        let nf = self.index.len();
        let (src, dst) = (&self.f[self.cur], &self.f[self.cur ^ 1]);
        let blocks = nf.div_ceil(self.block_size);
        let stats = self.gpu.launch(
            &Launch::simple(blocks, self.block_size),
            &SparseKernel::<L, C> {
                src,
                dst,
                table: &self.table,
                nf,
                collision: &self.collision,
                block_size: self.block_size,
                _l: PhantomData,
            },
        );
        self.accum.merge(&stats.tally);
        self.cur ^= 1;
        self.steps += 1;
    }

    /// Advance `steps` timesteps.
    pub fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// Measured DRAM bytes per fluid update — `2Q·8 + Q·4` for the link
    /// reads (the indirect-addressing penalty).
    pub fn measured_bpf(&self) -> f64 {
        let updates = self.index.len() as u64 * self.steps;
        self.accum.dram_bytes() as f64 / updates as f64
    }

    /// Device-memory footprint: two compacted lattices plus the link table.
    /// Scales with the fluid count, not the bounding box.
    pub fn footprint_bytes(&self) -> usize {
        self.f[0].size_bytes() + self.f[1].size_bytes() + self.table.size_bytes()
    }

    /// Velocity field on the full domain (solid nodes report zero).
    pub fn velocity_field(&self) -> Vec<[f64; 3]> {
        let nf = self.index.len();
        let mut out = vec![[0.0; 3]; self.geom.len()];
        let mut f_loc = [0.0f64; MAX_Q];
        for (cid, &idx) in self.index.nodes.iter().enumerate() {
            for i in 0..L::Q {
                f_loc[i] = self.f[self.cur].get(i * nf + cid);
            }
            out[idx] = Moments::from_f::<L>(&f_loc[..L::Q]).u;
        }
        out
    }

    /// Density field on the full domain.
    pub fn density_field(&self) -> Vec<f64> {
        let nf = self.index.len();
        let mut out = vec![0.0; self.geom.len()];
        let mut f_loc = [0.0f64; MAX_Q];
        for (cid, &idx) in self.index.nodes.iter().enumerate() {
            for i in 0..L::Q {
                f_loc[i] = self.f[self.cur].get(i * nf + cid);
            }
            out[idx] = Moments::from_f::<L>(&f_loc[..L::Q]).rho;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbm_core::collision::{Bgk, Projective};
    use lbm_core::Solver;
    use lbm_lattice::{D2Q9, D3Q19};

    #[test]
    fn compaction_counts_fluid_only() {
        let geom = Geometry::walls_y_periodic_x(12, 8).with_cylinder(6.0, 4.0, 2.0);
        let index = FluidIndex::build(&geom);
        assert_eq!(index.len(), geom.fluid_count());
        // Round trip compact ↔ domain.
        for (cid, &idx) in index.nodes.iter().enumerate() {
            assert_eq!(index.compact[idx], cid);
        }
    }

    /// Sparse ST matches the dense reference on an obstacle-laden domain.
    #[test]
    fn matches_dense_reference_with_obstacle() {
        let geom = Geometry::walls_y_periodic_x(16, 10).with_cylinder(6.0, 5.0, 2.0);
        let init =
            |_x: usize, y: usize, _z: usize| (1.0, [0.03 * (y as f64 * 0.6).sin(), 0.0, 0.0]);
        let mut sparse: StSparseSim<D2Q9, _> =
            StSparseSim::new(DeviceSpec::v100(), geom.clone(), Projective::new(0.8))
                .with_cpu_threads(2);
        sparse.init_with(init);
        let mut dense: Solver<D2Q9, _> = Solver::new(geom, Projective::new(0.8)).with_threads(2);
        dense.init_with(init);
        sparse.run(15);
        dense.run(15);
        let (us, ud) = (sparse.velocity_field(), dense.velocity_field());
        for (a, b) in us.iter().zip(&ud) {
            for k in 0..3 {
                assert!((a[k] - b[k]).abs() < 1e-12, "{a:?} vs {b:?}");
            }
        }
    }

    /// The indirect-addressing B/F penalty: 2Q·8 + Q·4 per update
    /// (304 + 76 = 380 for D3Q19; 144 + 36 = 180 for D2Q9).
    #[test]
    fn measured_bpf_includes_link_reads() {
        let geom = Geometry::walls_y_periodic_x(24, 12);
        let mut s2: StSparseSim<D2Q9, _> =
            StSparseSim::new(DeviceSpec::v100(), geom, Bgk::new(0.8)).with_cpu_threads(2);
        s2.run(3);
        assert!(
            (s2.measured_bpf() - 180.0).abs() < 1.0,
            "{}",
            s2.measured_bpf()
        );

        let mut g3 = Geometry::new(10, 8, 8, [true, false, false]);
        for z in 0..8 {
            for x in 0..10 {
                g3.set(x, 0, z, NodeType::Wall);
                g3.set(x, 7, z, NodeType::Wall);
            }
        }
        for y in 0..8 {
            for x in 0..10 {
                g3.set(x, y, 0, NodeType::Wall);
                g3.set(x, y, 7, NodeType::Wall);
            }
        }
        let mut s3: StSparseSim<D3Q19, _> =
            StSparseSim::new(DeviceSpec::v100(), g3, Bgk::new(0.8)).with_cpu_threads(2);
        s3.run(2);
        assert!(
            (s3.measured_bpf() - 380.0).abs() < 1.0,
            "{}",
            s3.measured_bpf()
        );
    }

    /// Sparse storage beats dense on porous domains: with half the box
    /// solid, the footprint is roughly halved (plus the link table).
    #[test]
    fn footprint_scales_with_fluid_count() {
        let mut geom = Geometry::walls_y_periodic_x(32, 32);
        // Solid lower half.
        for y in 1..16 {
            for x in 0..32 {
                geom.set(x, y, 0, NodeType::Wall);
            }
        }
        let sparse: StSparseSim<D2Q9, _> =
            StSparseSim::new(DeviceSpec::v100(), geom.clone(), Bgk::new(0.8));
        let dense_bytes = 2 * 9 * geom.len() * 8;
        // fluid ≈ half the box; sparse ≈ half the f storage + 25% links.
        assert!(sparse.footprint_bytes() < (dense_bytes as f64 * 0.65) as usize);
    }

    /// The satellite fix: the u32 table encoding has a hard node-count
    /// ceiling per lattice, checked at build time with a clear error.
    /// (Allocating 2³²⁄Q nodes is infeasible in a unit test, so the bound
    /// check is exercised directly with synthetic counts.)
    #[test]
    fn table_encoding_bound_is_exact() {
        for q in [9usize, 19, 27] {
            let max = max_encodable_fluid_nodes(q);
            // Largest encodable entry fits in u32…
            assert!(q * max - 1 <= u32::MAX as usize);
            // …and one more node would overflow.
            assert!(q * (max + 1) - 1 > u32::MAX as usize);
            assert!(check_table_encoding(q, max).is_ok());
            let err = check_table_encoding(q, max + 1).unwrap_err();
            assert!(err.contains("overflow"), "{err}");
            assert!(err.contains(&format!("Q={q}")), "{err}");
        }
        // D3Q19 at the paper's production scales: 226 million fluid nodes
        // ((2³²)/19) is the ceiling — a 620³ box exceeds it.
        assert_eq!(max_encodable_fluid_nodes(19), 226_050_910);
        assert!(check_table_encoding(19, 620 * 620 * 620).is_err());
    }

    #[test]
    #[should_panic(expected = "only fluid and resting-wall")]
    fn rejects_inlets() {
        let geom = Geometry::channel_2d(12, 8, 0.04);
        let _ = StSparseSim::<D2Q9, _>::new(DeviceSpec::v100(), geom, Bgk::new(0.8));
    }
}
