//! GPU-substrate implementations of the paper's three propagation patterns.
//!
//! * [`st`] — the **standard distribution representation** (Algorithm 1):
//!   two full lattices, SoA layout, pull scheme, one thread per node.
//! * [`mr2d`] / [`mr3d`] — the **moment representation** (Algorithm 2): one
//!   moment lattice in global memory, column decomposition with per-column
//!   thread blocks, collision in moment space, mapping to distribution space
//!   inside shared memory for exact streaming, sliding-window tiles with a
//!   two-layer write lag, and in-place global updates protected by circular
//!   array time shifting ([`moment_lattice`]). The collision kernel is
//!   either projective (**MR-P**) or recursive (**MR-R**) regularization
//!   ([`scheme`]).
//! * [`boundary`] — the finite-difference inlet/outlet kernels for both
//!   representations.
//! * [`footprint`] — device-memory footprint accounting (§4.1's 35 % / 47 %
//!   reduction claims).
//!
//! All kernels run on the [`gpu_sim`] substrate, which measures their global
//! memory traffic byte-exactly; the drivers expose the measured B/F that
//! feeds the roofline/efficiency models. Numerical results are validated
//! against the `lbm-core` reference solver to floating-point roundoff — the
//! moment representation is a *lossless* compression of the regularized
//! state, and the test suite proves it.

#![allow(clippy::needless_range_loop)] // indexed loops are the idiom in stencil kernels
pub mod aa;
pub mod boundary;
pub mod footprint;
pub mod moment_lattice;
pub mod mr2d;
pub mod mr3d;
pub mod scheme;
pub mod sim_impls;
pub mod sparse;
pub mod sparse_mr;
pub mod st;

pub use aa::{launch_aa_collide_span, launch_aa_stream_span, AaStSim};
pub use moment_lattice::MomentLattice;
pub use mr2d::{launch_mr2d_columns, launch_mr_bc, MrSim2D};
pub use mr3d::{launch_mr3d_columns, MrSim3D};
pub use scheme::MrScheme;
pub use sparse::{launch_sparse_st, FluidIndex, SparseBuildError, StSparseSim};
pub use sparse_mr::{launch_sparse_mr, SparseMrSim, SparseMrSim2D, SparseMrSim3D};
pub use st::{launch_st_bc, launch_st_pull_span, StSim, StStream};
