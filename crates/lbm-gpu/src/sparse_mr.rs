//! Sparse (indirect-addressing) moment-representation driver.
//!
//! The MR byte reduction (store `M` moments instead of `Q` populations)
//! compounds with fluid-only compaction: a porous domain stores `M·8`
//! bytes per *fluid* node plus the `u32` link table, instead of `Q·8` per
//! bounding-box node twice over. Per fluid update the byte ledger is
//!
//! ```text
//!   B/F = 2M·8 + Q·4        (132 for D2Q9, 236 for D3Q19)
//! ```
//!
//! — `M` moment reads + `M` moment writes per node (the moment lattice is
//! single-copy, updated in place under lockstep phases) plus one `u32`
//! link read per direction. Compare sparse ST's `2Q·8 + Q·4` (180/380)
//! and dense MR's `2M·8` (96/160).
//!
//! The update is the *pull-form* mirror of the dense MR drivers'
//! push-form scatter: for each direction the kernel follows the
//! precompiled link to the upstream node, recomputes that node's
//! post-collision population (`collide_and_map` on its time-`t` moments —
//! in-cache work, traded for the second lattice), and reduces the gathered
//! populations straight to time-`t+1` moments. Links encode halfway
//! bounce-back exactly as the dense scatter does (a wall link points at
//! the node's own opposite direction), so on the shared fluid nodes the
//! arithmetic — and therefore the trajectory — is **bitwise identical**
//! to the dense MR drivers.
//!
//! One grid-wide lockstep barrier separates the gather (phase 0, reads
//! only) from the in-place moment write-back (phase 1), so a single
//! moment lattice suffices; the per-tile staging slab lives in block
//! scratch, which persists across phases.

use crate::scheme::MrScheme;
use crate::sparse::{
    build_neighbor_table, validate_sparse_geometry, FluidIndex, SparseBuildError, Tile,
};
use gpu_sim::exec::{BlockCtx, Launch, PhasedKernel};
use gpu_sim::memory::Tally;
use gpu_sim::{DeviceSpec, GlobalBuffer, Gpu};
use lbm_core::geometry::Geometry;
use lbm_core::kernels::{self, LaneBlock, LANES, MAX_M, MAX_Q};
use lbm_lattice::moments::Moments;
use lbm_lattice::{Lattice, D2Q9, D3Q19};
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::Arc;

/// Two-phase pull kernel: one block per tile.
///
/// * **Phase 0** — load the tile's moment rows, compute the tile nodes'
///   post-collision populations (vectorized lane chunks or the scalar
///   path, bitwise-identical), gather through the link table (out-of-tile
///   upstream nodes are recomputed on the fly with a per-block memo), and
///   stage each active node's new moments in block scratch.
/// * **Phase 1** — after the grid-wide barrier, write the staged moments
///   back in place.
///
/// Reads all happen in phase 0 and writes in phase 1 with each cell
/// written by exactly one block, so the kernel passes strict race
/// checking.
struct SparseMrKernel<'a, L: Lattice> {
    /// Time-`t` moments (all reads go here).
    src: &'a GlobalBuffer<f64>,
    /// Time-`t+1` moments (all writes go here). The single-device driver
    /// passes the same buffer for both — in-place, safe under the lockstep
    /// barrier; the sharded driver passes distinct buffers so a failed
    /// halo exchange can retry the whole step from unmodified `src`.
    dst: &'a GlobalBuffer<f64>,
    table: &'a GlobalBuffer<u32>,
    tiles: &'a [Tile],
    nf: usize,
    scheme: &'a MrScheme,
    tau: f64,
    /// `ω = 1 − 1/τ`, the lane-path relaxation factor (same f64 the
    /// scalar path recomputes).
    omega: f64,
    scalar: bool,
    /// Shared/scratch slab stride (max tile span).
    cap: usize,
    dirs: Vec<usize>,
    _l: PhantomData<L>,
}

impl<L: Lattice> SparseMrKernel<'_, L> {
    /// Scalar post-collision populations of one node's moment vector.
    #[inline]
    fn collide_node(&self, mm: &[f64], out: &mut [f64]) {
        let m = Moments::unpack::<L>(mm);
        self.scheme.collide_and_map::<L>(&m, self.tau, out);
    }
}

impl<L: Lattice> PhasedKernel for SparseMrKernel<'_, L> {
    fn name(&self) -> &str {
        "mr-sparse"
    }

    fn phases(&self) -> usize {
        2
    }

    fn run_phase(&self, phase: usize, ctx: &mut BlockCtx) {
        let tile = &self.tiles[ctx.block_id];
        let lo = tile.lo as usize;
        let len = (tile.hi - tile.lo) as usize;
        let stage = self.cap * L::M; // staged moments live after the row slab

        if phase == 1 {
            // Write-back: each active node's staged moments, in place.
            for (slot, &cid) in tile.active.iter().enumerate() {
                for m in 0..L::M {
                    let v = ctx.scratch()[stage + m * self.cap + slot];
                    ctx.write(self.dst, m * self.nf + cid as usize, v);
                }
            }
            return;
        }

        // Phase 0, step 1: the tile's moment rows → scratch[0 .. M·len]
        // (counted reads; every stored node's moments are touched once).
        for m in 0..L::M {
            ctx.read_span_to_scratch(self.src, m * self.nf + lo, m * len, len);
        }

        // Step 2: post-collision populations of every tile node →
        // shared[i·len + j]. The vectorized chunks are the same
        // `lbm_core::kernels` lane paths the dense MR drivers run, and are
        // bitwise-identical to the scalar fallback.
        if self.scalar {
            let mut mm = [0.0f64; MAX_M];
            let mut fstar = [0.0f64; MAX_Q];
            for j in 0..len {
                {
                    let scratch = ctx.scratch();
                    for m in 0..L::M {
                        mm[m] = scratch[m * len + j];
                    }
                }
                self.collide_node(&mm[..L::M], &mut fstar[..L::Q]);
                let shared = ctx.shared();
                for i in 0..L::Q {
                    shared[i * len + j] = fstar[i];
                }
            }
        } else {
            let mut out: LaneBlock = [[0.0; LANES]; MAX_Q];
            let mut j0 = 0;
            while j0 < len {
                {
                    let (shared, scratch) = ctx.shared_and_scratch();
                    let moms = &scratch[..L::M * len];
                    match self.scheme {
                        MrScheme::Projective => kernels::mr_p_collide_chunk::<L>(
                            moms, len, j0, self.omega, &self.dirs, &mut out,
                        ),
                        MrScheme::Recursive(basis) => kernels::mr_r_collide_chunk::<L>(
                            moms, len, j0, self.omega, basis, &self.dirs, &mut out,
                        ),
                    }
                    let cnt = LANES.min(len - j0);
                    for i in 0..L::Q {
                        for l in 0..cnt {
                            shared[i * len + j0 + l] = out[i][l];
                        }
                    }
                }
                j0 += LANES;
            }
        }

        // Step 3: gather through the link table, reduce to new moments,
        // stage in scratch. Upstream nodes outside this tile are
        // recomputed scalar (bitwise-equal) with a per-block memo; their
        // moment reads are counted like any other (repeats within the
        // launch are L2 hits under touch tracking, so the DRAM ledger
        // stays `M·8 + Q·4` read + `M·8` written per fluid node).
        let mut memo: HashMap<usize, [f64; MAX_Q]> = HashMap::new();
        let mut f_loc = [0.0f64; MAX_Q];
        let mut mm = [0.0f64; MAX_M];
        for (slot, &cid) in tile.active.iter().enumerate() {
            let cid = cid as usize;
            for i in 0..L::Q {
                let link = ctx.read(self.table, i * self.nf + cid) as usize;
                let (d, p) = (link / self.nf, link % self.nf);
                f_loc[i] = if p >= lo && p < lo + len {
                    ctx.shared()[d * len + (p - lo)]
                } else if let Some(fs) = memo.get(&p) {
                    fs[d]
                } else {
                    for m in 0..L::M {
                        mm[m] = ctx.read(self.src, m * self.nf + p);
                    }
                    let mut fs = [0.0f64; MAX_Q];
                    self.collide_node(&mm[..L::M], &mut fs[..L::Q]);
                    memo.insert(p, fs);
                    fs[d]
                };
            }
            let mnew = Moments::from_f::<L>(&f_loc[..L::Q]);
            mnew.pack::<L>(&mut mm[..L::M]);
            let scratch = ctx.scratch();
            for m in 0..L::M {
                scratch[stage + m * self.cap + slot] = mm[m];
            }
        }
    }
}

/// Launch the two-phase sparse MR kernel over every tile of `index`.
/// `src` holds time-`t` moments, `dst` receives time-`t+1` moments for the
/// active nodes; the single-device driver passes the same buffer for both
/// (in-place), the sharded drivers pass distinct ones.
#[allow(clippy::too_many_arguments)]
pub fn launch_sparse_mr<L: Lattice>(
    gpu: &Gpu,
    src: &GlobalBuffer<f64>,
    dst: &GlobalBuffer<f64>,
    table: &GlobalBuffer<u32>,
    index: &FluidIndex,
    scheme: &MrScheme,
    tau: f64,
    scalar: bool,
) -> gpu_sim::exec::LaunchStats {
    let tiles = index.tiles();
    let cap = index.tile_capacity().max(1);
    let cfg = Launch {
        blocks: tiles.len(),
        threads_per_block: cap,
        shared_doubles: L::Q * cap,
        scratch_doubles: 2 * L::M * cap,
    };
    gpu.launch_lockstep(
        &cfg,
        &SparseMrKernel::<L> {
            src,
            dst,
            table,
            tiles,
            nf: index.len(),
            scheme,
            tau,
            omega: 1.0 - 1.0 / tau,
            scalar,
            cap,
            dirs: kernels::dirs_all::<L>(),
            _l: PhantomData,
        },
    )
}

/// Driver for the sparse (fluid-compacted, indirect-addressing)
/// moment-representation simulation. Stores a single in-place moment
/// lattice of `M` doubles per fluid node plus the `u32` link table.
pub struct SparseMrSim<L: Lattice> {
    gpu: Gpu,
    geom: Geometry,
    index: FluidIndex,
    table: GlobalBuffer<u32>,
    mom: GlobalBuffer<f64>,
    scheme: MrScheme,
    tau: f64,
    scalar: bool,
    t: u64,
    accum: Tally,
    obs: Option<Arc<obs::Obs>>,
    monitor: Option<obs::PhysicsMonitor>,
    _l: PhantomData<L>,
}

/// Sparse MR on the D2Q9 lattice (M = 6: B/F 132 vs dense MR's 96).
pub type SparseMrSim2D = SparseMrSim<D2Q9>;
/// Sparse MR on the D3Q19 lattice (M = 10: B/F 236 vs dense MR's 160).
pub type SparseMrSim3D = SparseMrSim<D3Q19>;

impl<L: Lattice> SparseMrSim<L> {
    /// Build a sparse MR simulation, panicking on an unsupported geometry.
    /// Use [`SparseMrSim::try_new`] where build failures must be handled.
    pub fn new(device: DeviceSpec, geom: Geometry, scheme: MrScheme, tau: f64) -> Self {
        Self::try_new(device, geom, scheme, tau).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build a sparse MR simulation. The geometry may contain only
    /// fluid/wall/periodic nodes (no inlet/outlet/moving walls).
    pub fn try_new(
        device: DeviceSpec,
        geom: Geometry,
        scheme: MrScheme,
        tau: f64,
    ) -> Result<Self, SparseBuildError> {
        validate_sparse_geometry(&geom)?;
        let index = FluidIndex::build(&geom);
        if index.is_empty() {
            return Err(SparseBuildError::NoFluidNodes);
        }
        let table =
            GlobalBuffer::from_vec(build_neighbor_table::<L>(&geom, &index)?).with_touch_tracking();
        let nf = index.len();
        let mut sim = SparseMrSim {
            gpu: Gpu::new(device),
            geom,
            index,
            table,
            mom: GlobalBuffer::new(L::M * nf).with_touch_tracking(),
            scheme,
            tau,
            scalar: false,
            t: 0,
            accum: Tally::default(),
            obs: None,
            monitor: None,
            _l: PhantomData,
        };
        sim.init_with(|_, _, _| (1.0, [0.0; 3]));
        Ok(sim)
    }

    /// Limit the CPU worker threads backing the substrate.
    pub fn with_cpu_threads(mut self, n: usize) -> Self {
        self.gpu = self.gpu.with_cpu_threads(n);
        self
    }

    /// Override the minimum launch size dispatched to the worker pool.
    pub fn with_parallel_threshold(mut self, items: usize) -> Self {
        self.gpu = self.gpu.with_parallel_threshold(items);
        self
    }

    /// Force the original per-node scalar kernels (bitwise-identical to
    /// the default vectorized lane path; used by the equivalence tests).
    pub fn with_scalar_kernels(mut self) -> Self {
        self.scalar = true;
        self
    }

    /// Attach the substrate's race checker to the moment lattice. The
    /// two-phase kernel reads strictly before it writes, so even the
    /// strict checker stays quiet.
    pub fn with_racecheck_strict(mut self) -> Self {
        assert_eq!(self.t, 0, "attach the race checker before stepping");
        let old = std::mem::replace(&mut self.mom, GlobalBuffer::new(0));
        self.mom = old.with_racecheck_strict();
        self
    }

    /// Route injected faults through the substrate and the moment lattice.
    pub fn with_fault_plan(mut self, plan: Arc<gpu_sim::FaultPlan>) -> Self {
        self.gpu.set_fault_plan(plan.clone());
        self.mom.set_fault_plan(plan);
        self
    }

    /// Attach an observability hub (kernel spans, monitor gauges).
    pub fn with_obs(mut self, obs: Arc<obs::Obs>) -> Self {
        self.set_obs(obs);
        self
    }

    /// Attach an observability hub after construction.
    pub fn set_obs(&mut self, obs: Arc<obs::Obs>) {
        self.gpu.set_obs(obs.clone());
        self.obs = Some(obs);
    }

    /// Attribute subsequent spans and events to a fleet trace context.
    pub fn set_trace_ctx(&mut self, ctx: Option<obs::TraceCtx>) {
        self.gpu.set_trace_ctx(ctx);
    }

    /// Attach a physics monitor sampling the macroscopic fields.
    pub fn with_monitor(mut self, cfg: obs::MonitorConfig) -> Self {
        self.monitor = Some(obs::PhysicsMonitor::new(cfg));
        self
    }

    /// The attached physics monitor, if any.
    pub fn monitor(&self) -> Option<&obs::PhysicsMonitor> {
        self.monitor.as_ref()
    }

    /// Monitor/metric pattern label for this driver.
    pub fn pattern_label(&self) -> &'static str {
        "sparse-mr"
    }

    /// Initialize every fluid node's moments from a macroscopic field
    /// (`{ρ, u, Π_eq}` — the same equilibrium start as the dense MR
    /// drivers, so shared fluid nodes begin bitwise-equal).
    pub fn init_with(&mut self, field: impl Fn(usize, usize, usize) -> (f64, [f64; 3])) {
        let nf = self.index.len();
        let mut packed = [0.0f64; MAX_M];
        for (cid, &idx) in self.index.nodes.iter().enumerate() {
            let (x, y, z) = self.geom.coords(idx);
            let (rho, u) = field(x, y, z);
            let m = Moments {
                rho,
                u,
                pi: Moments::pi_eq(rho, u, L::D),
            };
            m.pack::<L>(&mut packed[..L::M]);
            for mi in 0..L::M {
                self.mom.set(mi * nf + cid, packed[mi]);
            }
        }
        self.t = 0;
        self.accum = Tally::default();
    }

    /// Advance one timestep (one two-phase lockstep launch).
    pub fn step(&mut self) {
        let obs = self.obs.clone();
        let _step_span = obs.as_ref().map(|o| {
            let mut args = vec![("t", self.t.to_string())];
            if let Some(ctx) = self.gpu.trace_ctx() {
                ctx.append_args(&mut args);
            }
            o.tracer.span_args("driver", "step", &args)
        });
        let stats = launch_sparse_mr::<L>(
            &self.gpu,
            &self.mom,
            &self.mom,
            &self.table,
            &self.index,
            &self.scheme,
            self.tau,
            self.scalar,
        );
        self.accum.merge(&stats.tally);
        self.t += 1;
        self.sample_monitor();
    }

    /// Cadence-gated monitor sampling.
    fn sample_monitor(&mut self) {
        if !self.monitor.as_ref().is_some_and(|m| m.due(self.t)) {
            return;
        }
        let (rho, u) = self.macro_fields();
        let s = self.monitor.as_mut().unwrap().observe(self.t, &rho, &u);
        if let Some(o) = &self.obs {
            let pat = self.pattern_label();
            o.metrics
                .gauge_set("monitor_mass", &[("pattern", pat)], s.mass);
            o.metrics
                .gauge_set("monitor_max_u", &[("pattern", pat)], s.max_u);
            if s.nonfinite > 0 {
                o.tracer.instant(
                    "monitor",
                    "nonfinite",
                    &[
                        ("step", s.step.to_string()),
                        ("count", s.nonfinite.to_string()),
                    ],
                );
            }
        }
    }

    /// Force a final monitor sample at the current step.
    pub fn finish_monitor(&mut self) {
        if self.monitor.is_none() {
            return;
        }
        let (rho, u) = self.macro_fields();
        let s = self.monitor.as_mut().unwrap().finish(self.t, &rho, &u);
        if let (Some(s), Some(o)) = (s, &self.obs) {
            let pat = self.pattern_label();
            o.metrics
                .gauge_set("monitor_mass", &[("pattern", pat)], s.mass);
            o.metrics
                .gauge_set("monitor_max_u", &[("pattern", pat)], s.max_u);
            o.tracer
                .instant("monitor", "flush", &[("step", s.step.to_string())]);
        }
    }

    /// Advance `steps` timesteps, then flush the monitor.
    pub fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
        self.finish_monitor();
    }

    /// Completed timesteps.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Domain geometry.
    pub fn geom(&self) -> &Geometry {
        &self.geom
    }

    /// The fluid-node compaction.
    pub fn index(&self) -> &FluidIndex {
        &self.index
    }

    /// The collision scheme.
    pub fn scheme(&self) -> &MrScheme {
        &self.scheme
    }

    /// Aggregate traffic over all steps so far.
    pub fn traffic(&self) -> Tally {
        self.accum
    }

    /// Measured DRAM bytes per fluid update — `2M·8 + Q·4` (132 for D2Q9,
    /// 236 for D3Q19). Zero before the first step (no updates yet, so
    /// there is no per-update ratio — the 0/0 guard of the ST driver).
    pub fn measured_bpf(&self) -> f64 {
        let updates = self.index.len() as u64 * self.t;
        if updates == 0 {
            return 0.0;
        }
        self.accum.dram_bytes() as f64 / updates as f64
    }

    /// Device-memory footprint: one compacted moment lattice plus the link
    /// table — `M·8 + Q·4` bytes per fluid node.
    pub fn footprint_bytes(&self) -> usize {
        self.mom.size_bytes() + self.table.size_bytes()
    }

    /// Serialize the full solver state (LBCK flavor `"sparse-mr"`).
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut w = lbm_core::io::CheckpointWriter::new("sparse-mr");
        w.put_u64(self.geom.nx as u64)
            .put_u64(self.geom.ny as u64)
            .put_u64(self.geom.nz as u64)
            .put_u64(L::M as u64)
            .put_u64(self.index.len() as u64)
            .put_u64(self.t)
            .put_u64(self.accum.reads)
            .put_u64(self.accum.writes)
            .put_u64(self.accum.bytes_read)
            .put_u64(self.accum.bytes_written)
            .put_u64(self.accum.dram_bytes_read)
            .put_u64(self.accum.l2_read_hits)
            .put_f64s(&self.mom.snapshot());
        w.finish()
    }

    /// Restore a [`SparseMrSim::checkpoint`] snapshot.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), lbm_core::io::CheckpointError> {
        use lbm_core::io::CheckpointReader;
        let mut r = CheckpointReader::open(bytes, "sparse-mr")?;
        r.expect_u64(self.geom.nx as u64, "nx")?;
        r.expect_u64(self.geom.ny as u64, "ny")?;
        r.expect_u64(self.geom.nz as u64, "nz")?;
        r.expect_u64(L::M as u64, "M")?;
        r.expect_u64(self.index.len() as u64, "fluid nodes")?;
        let t = r.take_u64()?;
        self.accum = Tally {
            reads: r.take_u64()?,
            writes: r.take_u64()?,
            bytes_read: r.take_u64()?,
            bytes_written: r.take_u64()?,
            dram_bytes_read: r.take_u64()?,
            l2_read_hits: r.take_u64()?,
        };
        let raw = r.take_f64s(self.mom.len())?;
        for (i, v) in raw.iter().enumerate() {
            self.mom.set(i, *v);
        }
        self.t = t;
        if let Some(m) = self.monitor.as_mut() {
            m.rollback_to(self.t);
        }
        Ok(())
    }

    /// FNV-1a fingerprint of the macroscopic fields (bitwise-sensitive).
    pub fn field_checksum(&self) -> u64 {
        let (rho, u) = self.macro_fields();
        lbm_core::io::field_checksum(&rho, &u)
    }

    /// Density and velocity fields on the full domain in one pass (solid
    /// nodes report zero).
    pub fn macro_fields(&self) -> (Vec<f64>, Vec<[f64; 3]>) {
        let nf = self.index.len();
        let mut rho_out = vec![0.0; self.geom.len()];
        let mut u_out = vec![[0.0; 3]; self.geom.len()];
        for (cid, &idx) in self.index.nodes.iter().enumerate() {
            rho_out[idx] = self.mom.get(cid);
            for a in 0..L::D {
                u_out[idx][a] = self.mom.get((1 + a) * nf + cid);
            }
        }
        (rho_out, u_out)
    }

    /// Velocity field on the full domain (solid nodes report zero).
    pub fn velocity_field(&self) -> Vec<[f64; 3]> {
        self.macro_fields().1
    }

    /// Density field on the full domain.
    pub fn density_field(&self) -> Vec<f64> {
        self.macro_fields().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MrSim2D;
    use lbm_core::geometry::NodeType;

    fn obstacle_2d() -> Geometry {
        Geometry::walls_y_periodic_x(20, 12).with_cylinder(8.5, 5.5, 2.4)
    }

    fn shear(_x: usize, y: usize, _z: usize) -> (f64, [f64; 3]) {
        (1.0, [0.04 * (y as f64 * 0.55).sin(), 0.0, 0.0])
    }

    /// The tentpole equivalence: sparse MR is bitwise-equal to dense MR on
    /// the shared fluid nodes (pull-form links reproduce the push-form
    /// scatter exactly), for both collision schemes.
    #[test]
    fn bitwise_equal_to_dense_mr_on_obstacle() {
        for scheme in [MrScheme::projective(), MrScheme::recursive::<D2Q9>()] {
            let geom = obstacle_2d();
            let mut dense: MrSim2D<D2Q9> =
                MrSim2D::new(DeviceSpec::v100(), geom.clone(), scheme.clone(), 0.8)
                    .with_cpu_threads(2);
            dense.init_with(shear);
            let mut sparse: SparseMrSim2D =
                SparseMrSim::new(DeviceSpec::v100(), geom, scheme, 0.8).with_cpu_threads(2);
            sparse.init_with(shear);
            dense.run(12);
            sparse.run(12);
            assert_eq!(
                dense.field_checksum(),
                sparse.field_checksum(),
                "sparse MR must be bitwise-equal to dense MR"
            );
        }
    }

    /// The vectorized lane path and the scalar path are bitwise-identical,
    /// and the strict race checker accepts the two-phase schedule.
    #[test]
    fn scalar_and_vectorized_agree() {
        let geom = obstacle_2d();
        let mut fast: SparseMrSim2D = SparseMrSim::new(
            DeviceSpec::v100(),
            geom.clone(),
            MrScheme::projective(),
            0.8,
        )
        .with_racecheck_strict()
        .with_cpu_threads(2);
        fast.init_with(shear);
        let mut slow: SparseMrSim2D =
            SparseMrSim::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8)
                .with_scalar_kernels()
                .with_cpu_threads(1);
        slow.init_with(shear);
        fast.run(10);
        slow.run(10);
        assert_eq!(fast.field_checksum(), slow.field_checksum());
    }

    /// The byte ledger: B/F = 2M·8 + Q·4 per fluid update (132 for D2Q9),
    /// and the footprint is exactly (M·8 + Q·4) bytes per fluid node.
    #[test]
    fn measured_bpf_and_footprint_match_model() {
        let geom = obstacle_2d();
        let nf = geom.fluid_count();
        let mut sim: SparseMrSim2D =
            SparseMrSim::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8)
                .with_cpu_threads(2);
        sim.init_with(shear);
        assert_eq!(sim.measured_bpf(), 0.0, "no updates yet — the 0/0 guard");
        sim.run(3);
        assert!(
            (sim.measured_bpf() - 132.0).abs() < 0.5,
            "{}",
            sim.measured_bpf()
        );
        assert_eq!(sim.footprint_bytes(), nf * (6 * 8 + 9 * 4));
    }

    /// 3D sparse MR: B/F = 2·10·8 + 19·4 = 236 on a walled duct.
    #[test]
    fn measured_bpf_3d() {
        let mut g3 = Geometry::new(10, 8, 8, [true, false, false]);
        for z in 0..8 {
            for x in 0..10 {
                g3.set(x, 0, z, NodeType::Wall);
                g3.set(x, 7, z, NodeType::Wall);
            }
        }
        for y in 0..8 {
            for x in 0..10 {
                g3.set(x, y, 0, NodeType::Wall);
                g3.set(x, y, 7, NodeType::Wall);
            }
        }
        let nf = g3.fluid_count();
        let mut sim: SparseMrSim3D =
            SparseMrSim::new(DeviceSpec::mi100(), g3, MrScheme::projective(), 0.8)
                .with_cpu_threads(2);
        sim.init_with(shear);
        sim.run(2);
        assert!(
            (sim.measured_bpf() - 236.0).abs() < 0.5,
            "{}",
            sim.measured_bpf()
        );
        assert_eq!(sim.footprint_bytes(), nf * (10 * 8 + 19 * 4));
    }

    /// LBCK round-trip: a restored run continues bitwise-identically.
    #[test]
    fn checkpoint_roundtrip_is_bitwise() {
        let geom = obstacle_2d();
        let mk = || {
            let mut s: SparseMrSim2D = SparseMrSim::new(
                DeviceSpec::v100(),
                geom.clone(),
                MrScheme::projective(),
                0.8,
            )
            .with_cpu_threads(1);
            s.init_with(shear);
            s
        };
        let mut a = mk();
        a.run(5);
        let snap = a.checkpoint();
        a.run(4);

        let mut b = mk();
        b.restore(&snap).unwrap();
        assert_eq!(b.steps(), 5);
        b.run(4);
        assert_eq!(a.field_checksum(), b.field_checksum());
    }

    /// Typed build errors mirror the ST sparse driver.
    #[test]
    fn try_new_surfaces_typed_errors() {
        let geom = Geometry::channel_2d(12, 8, 0.04);
        let err =
            SparseMrSim::<D2Q9>::try_new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8)
                .err()
                .expect("inlet geometry must be rejected");
        assert!(
            matches!(err, SparseBuildError::UnsupportedNode(_)),
            "{err:?}"
        );
    }
}
