//! [`Simulation`] implementations for the three single-device drivers.
//!
//! Every method forwards to the driver's inherent method of the same name
//! (the inherent methods shadow the trait ones inside the impl), so the
//! trait adds a uniform, object-safe surface without changing any driver
//! behavior. Single-device steps cannot fail on a link, so the trait's
//! default `try_step` (step + `Ok`) applies.

use crate::{AaStSim, MrSim2D, MrSim3D, SparseMrSim, StSim, StSparseSim};
use lbm_core::collision::Collision;
use lbm_core::io::CheckpointError;
use lbm_core::sim::Simulation;
use lbm_lattice::Lattice;
use std::sync::Arc;

macro_rules! impl_simulation_single {
    ($ty:ty, [$($gen:tt)*]) => {
        impl<$($gen)*> Simulation for $ty {
            fn step(&mut self) {
                self.step()
            }
            fn steps(&self) -> u64 {
                self.steps()
            }
            fn checkpoint(&self) -> Vec<u8> {
                self.checkpoint()
            }
            fn restore(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
                self.restore(bytes)
            }
            fn field_checksum(&self) -> u64 {
                self.field_checksum()
            }
            fn macro_fields(&self) -> (Vec<f64>, Vec<[f64; 3]>) {
                Self::macro_fields(self)
            }
            fn set_obs(&mut self, obs: Arc<obs::Obs>) {
                self.set_obs(obs)
            }
            fn set_trace_ctx(&mut self, ctx: Option<obs::TraceCtx>) {
                self.set_trace_ctx(ctx)
            }
            fn monitor_ok(&self) -> bool {
                self.monitor().is_none_or(|m| m.is_ok())
            }
            fn finish_monitor(&mut self) {
                self.finish_monitor()
            }
            fn fluid_nodes(&self) -> usize {
                self.geom().fluid_count()
            }
            fn footprint_bytes(&self) -> usize {
                self.footprint_bytes()
            }
        }
    };
}

impl_simulation_single!(StSim<L, C>, [L: Lattice, C: Collision<L>]);
impl_simulation_single!(MrSim2D<L>, [L: Lattice]);
impl_simulation_single!(MrSim3D<L>, [L: Lattice]);
impl_simulation_single!(AaStSim<L, C>, [L: Lattice, C: Collision<L>]);
impl_simulation_single!(StSparseSim<L, C>, [L: Lattice, C: Collision<L>]);
impl_simulation_single!(SparseMrSim<L>, [L: Lattice]);

#[cfg(test)]
mod tests {
    use gpu_sim::DeviceSpec;
    use lbm_core::collision::Bgk;
    use lbm_core::sim::Simulation;
    use lbm_core::Geometry;
    use lbm_lattice::D2Q9;

    /// Audit regression: every driver's per-update byte ratio is 0 (not
    /// NaN) before the first step — `updates` is zero at construction, and
    /// the 0/0 would otherwise leak into serve quota math and bench JSON.
    /// (The footprint/roofline tables divide only by static nonzero node
    /// counts and pattern constants, so drivers are the only 0/0 site.)
    #[test]
    fn measured_bpf_is_zero_before_first_step_in_every_driver() {
        use crate::{MrScheme, MrSim2D, MrSim3D};
        let geom = Geometry::walls_y_periodic_x(12, 8);
        let st: crate::StSim<D2Q9, _> =
            crate::StSim::new(DeviceSpec::v100(), geom.clone(), Bgk::new(0.8));
        assert_eq!(st.measured_bpf(), 0.0);
        let aa: crate::AaStSim<D2Q9, _> =
            crate::AaStSim::new(DeviceSpec::v100(), geom.clone(), Bgk::new(0.8));
        assert_eq!(aa.measured_bpf(), 0.0);
        let mr2: MrSim2D<D2Q9> = MrSim2D::new(
            DeviceSpec::v100(),
            geom.clone(),
            MrScheme::projective(),
            0.8,
        );
        assert_eq!(mr2.measured_bpf(), 0.0);
        let mut g3 = Geometry::new(8, 6, 6, [true, false, false]);
        for z in 0..6 {
            for x in 0..8 {
                g3.set(x, 0, z, lbm_core::geometry::NodeType::Wall);
                g3.set(x, 5, z, lbm_core::geometry::NodeType::Wall);
            }
        }
        for y in 0..6 {
            for x in 0..8 {
                g3.set(x, y, 0, lbm_core::geometry::NodeType::Wall);
                g3.set(x, y, 5, lbm_core::geometry::NodeType::Wall);
            }
        }
        let mr3: MrSim3D<lbm_lattice::D3Q19> =
            MrSim3D::new(DeviceSpec::mi100(), g3, MrScheme::projective(), 0.8);
        assert_eq!(mr3.measured_bpf(), 0.0);
        let sp: crate::StSparseSim<D2Q9, _> =
            crate::StSparseSim::new(DeviceSpec::v100(), geom.clone(), Bgk::new(0.8));
        assert_eq!(sp.measured_bpf(), 0.0);
        let smr: crate::SparseMrSim<D2Q9> =
            crate::SparseMrSim::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8);
        assert_eq!(smr.measured_bpf(), 0.0);
    }

    /// The trait surface drives a driver through a `dyn` object and agrees
    /// with the inherent methods it forwards to.
    #[test]
    fn trait_object_drives_st_sim() {
        let geom = Geometry::walls_y_periodic_x(12, 6);
        let mk = || {
            let mut s: crate::StSim<D2Q9, _> =
                crate::StSim::new(DeviceSpec::v100(), geom.clone(), Bgk::new(0.8))
                    .with_cpu_threads(1);
            s.init_with(|x, y, _| (1.0, [0.02 * (y as f64 * 0.7).sin(), 0.01 * x as f64, 0.0]));
            s
        };
        let mut inherent = mk();
        inherent.run(5);

        let mut boxed: Box<dyn Simulation + Send> = Box::new(mk());
        for _ in 0..5 {
            boxed.try_step().unwrap();
        }
        assert_eq!(boxed.steps(), 5);
        assert_eq!(boxed.field_checksum(), inherent.field_checksum());
        assert_eq!(boxed.fluid_nodes(), geom.fluid_count());
        assert_eq!(boxed.footprint_bytes(), inherent.footprint_bytes());
        assert!(boxed.is_healthy());

        // Checkpoint through the trait restores into a fresh boxed sim.
        let snap = boxed.checkpoint();
        let mut fresh: Box<dyn Simulation + Send> = Box::new(mk());
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh.steps(), 5);
        assert_eq!(fresh.field_checksum(), inherent.field_checksum());
    }
}
