//! Device-memory footprint accounting — §4.1 of the paper.
//!
//! The paper quotes, for 15 M fluid points: ST ≈ 2 GiB (D2Q9) / 4.2 GiB
//! (D3Q19) versus MR ≈ 1.3 GiB / 2.23 GiB — reductions of ~35 % and ~47 %.
//! Those MR figures correspond to `2M` doubles per node (a double-buffered
//! moment lattice, matching the B/F of Table 2); the single-lattice variant
//! of Algorithm 2 (what [`crate::MrSim2D`] / [`crate::MrSim3D`] implement)
//! stores only `M` doubles plus circular-shift padding and is smaller
//! still. The harness reports both.

use gpu_sim::roofline::{
    footprint_aa_st, footprint_mr_double, footprint_mr_single, footprint_mr_twist, footprint_st,
};

/// One row of the footprint comparison.
#[derive(Clone, Debug)]
pub struct FootprintRow {
    pub lattice: &'static str,
    pub nodes: usize,
    /// ST: two full distribution lattices.
    pub st_bytes: usize,
    /// MR as quoted by the paper (double-buffered, 2M per node).
    pub mr_paper_bytes: usize,
    /// MR as implemented here (single lattice + padding).
    pub mr_single_bytes: usize,
    /// In-place AA-pattern ST: one lattice, `Q·8` per node exactly.
    pub aa_st_bytes: usize,
    /// In-place parity-twist MR: one lattice, `M·8` per node exactly.
    pub mr_twist_bytes: usize,
}

impl FootprintRow {
    /// Reduction of the paper-model MR vs ST (the 35 % / 47 % numbers).
    pub fn paper_reduction(&self) -> f64 {
        1.0 - self.mr_paper_bytes as f64 / self.st_bytes as f64
    }

    /// Reduction of the single-lattice MR vs ST.
    pub fn single_reduction(&self) -> f64 {
        1.0 - self.mr_single_bytes as f64 / self.st_bytes as f64
    }

    /// Reduction of the parity-twist MR vs ST — the deepest cut in the
    /// table: `M/2Q` of the ST bytes remain.
    pub fn twist_reduction(&self) -> f64 {
        1.0 - self.mr_twist_bytes as f64 / self.st_bytes as f64
    }
}

/// Build the §4.1 comparison for a node count.
pub fn footprint_table(nodes: usize) -> Vec<FootprintRow> {
    let pad2 = 2 * (nodes as f64).sqrt() as usize; // ~two rows of a square domain
    let pad3 = 2 * (nodes as f64).powf(2.0 / 3.0) as usize; // ~two layers
    vec![
        FootprintRow {
            lattice: "D2Q9",
            nodes,
            st_bytes: footprint_st(nodes, 9),
            mr_paper_bytes: footprint_mr_double(nodes, 6),
            mr_single_bytes: footprint_mr_single(nodes, 6, pad2),
            aa_st_bytes: footprint_aa_st(nodes, 9),
            mr_twist_bytes: footprint_mr_twist(nodes, 6),
        },
        FootprintRow {
            lattice: "D3Q19",
            nodes,
            st_bytes: footprint_st(nodes, 19),
            mr_paper_bytes: footprint_mr_double(nodes, 10),
            mr_single_bytes: footprint_mr_single(nodes, 10, pad3),
            aa_st_bytes: footprint_aa_st(nodes, 19),
            mr_twist_bytes: footprint_mr_twist(nodes, 10),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §4.1: ~33–35 % (2D) and ~47 % (3D) reductions for the paper-model
    /// MR; the single-lattice variant always does better.
    #[test]
    fn paper_reductions() {
        let rows = footprint_table(15_000_000);
        assert!((rows[0].paper_reduction() - 1.0 / 3.0).abs() < 0.01);
        assert!((rows[1].paper_reduction() - 0.474).abs() < 0.01);
        for r in &rows {
            assert!(r.single_reduction() > r.paper_reduction());
        }
    }

    /// The in-place patterns are exact halvings: AA-ST is `st/2` and
    /// twist-MR is `mr_paper/2`, byte-exact, at any node count.
    #[test]
    fn in_place_rows_are_exact_halvings() {
        for nodes in [100usize, 12_345, 15_000_000] {
            for r in footprint_table(nodes) {
                assert_eq!(2 * r.aa_st_bytes, r.st_bytes);
                assert_eq!(2 * r.mr_twist_bytes, r.mr_paper_bytes);
                assert!(r.mr_twist_bytes < r.mr_single_bytes);
                assert!(r.twist_reduction() > r.single_reduction());
            }
        }
    }

    /// GiB magnitudes quoted in the paper.
    #[test]
    fn paper_gib_figures() {
        const GIB: f64 = (1u64 << 30) as f64;
        let rows = footprint_table(15_000_000);
        assert!((rows[0].st_bytes as f64 / GIB - 2.01).abs() < 0.02);
        assert!((rows[0].mr_paper_bytes as f64 / GIB - 1.34).abs() < 0.02);
        assert!((rows[1].st_bytes as f64 / GIB - 4.25).abs() < 0.02);
        assert!((rows[1].mr_paper_bytes as f64 / GIB - 2.24).abs() < 0.02);
    }
}
