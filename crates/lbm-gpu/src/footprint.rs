//! Device-memory footprint accounting — §4.1 of the paper.
//!
//! The paper quotes, for 15 M fluid points: ST ≈ 2 GiB (D2Q9) / 4.2 GiB
//! (D3Q19) versus MR ≈ 1.3 GiB / 2.23 GiB — reductions of ~35 % and ~47 %.
//! Those MR figures correspond to `2M` doubles per node (a double-buffered
//! moment lattice, matching the B/F of Table 2); the single-lattice variant
//! of Algorithm 2 (what [`crate::MrSim2D`] / [`crate::MrSim3D`] implement)
//! stores only `M` doubles plus circular-shift padding and is smaller
//! still. The harness reports both.

use gpu_sim::roofline::{
    footprint_aa_st, footprint_mr_double, footprint_mr_single, footprint_mr_twist,
    footprint_sparse_mr, footprint_sparse_st, footprint_st,
};

/// One row of the footprint comparison.
#[derive(Clone, Debug)]
pub struct FootprintRow {
    pub lattice: &'static str,
    pub nodes: usize,
    /// ST: two full distribution lattices.
    pub st_bytes: usize,
    /// MR as quoted by the paper (double-buffered, 2M per node).
    pub mr_paper_bytes: usize,
    /// MR as implemented here (single lattice + padding).
    pub mr_single_bytes: usize,
    /// In-place AA-pattern ST: one lattice, `Q·8` per node exactly.
    pub aa_st_bytes: usize,
    /// In-place parity-twist MR: one lattice, `M·8` per node exactly.
    pub mr_twist_bytes: usize,
    /// Porosity assumed for the sparse rows (fluid / box nodes).
    pub porosity: f64,
    /// Sparse (fluid-compacted) ST at `porosity`: `fluid·(2Q·8 + Q·4)`.
    pub sparse_st_bytes: usize,
    /// Sparse in-place MR at `porosity`: `fluid·(M·8 + Q·4)`.
    pub sparse_mr_bytes: usize,
}

impl FootprintRow {
    /// Reduction of the paper-model MR vs ST (the 35 % / 47 % numbers).
    pub fn paper_reduction(&self) -> f64 {
        1.0 - self.mr_paper_bytes as f64 / self.st_bytes as f64
    }

    /// Reduction of the single-lattice MR vs ST.
    pub fn single_reduction(&self) -> f64 {
        1.0 - self.mr_single_bytes as f64 / self.st_bytes as f64
    }

    /// Reduction of the parity-twist MR vs ST — the deepest cut in the
    /// table: `M/2Q` of the ST bytes remain.
    pub fn twist_reduction(&self) -> f64 {
        1.0 - self.mr_twist_bytes as f64 / self.st_bytes as f64
    }

    /// Reduction of the sparse MR (at this row's porosity) vs the dense ST
    /// box — the compounded saving of compaction *and* moment compression.
    pub fn sparse_mr_reduction(&self) -> f64 {
        1.0 - self.sparse_mr_bytes as f64 / self.st_bytes as f64
    }
}

/// Build the §4.1 comparison for a node count (sparse rows at porosity 1:
/// every box node fluid, isolating the pure per-node overhead of the link
/// table). Use [`footprint_table_at`] for obstacle/porous domains.
pub fn footprint_table(nodes: usize) -> Vec<FootprintRow> {
    footprint_table_at(nodes, 1.0)
}

/// [`footprint_table`] with the sparse rows evaluated at `porosity` —
/// `fluid = ⌊porosity · nodes⌋` — while the dense rows keep paying for the
/// whole bounding box.
pub fn footprint_table_at(nodes: usize, porosity: f64) -> Vec<FootprintRow> {
    assert!((0.0..=1.0).contains(&porosity), "porosity is a fraction");
    let fluid = (porosity * nodes as f64).floor() as usize;
    let pad2 = 2 * (nodes as f64).sqrt() as usize; // ~two rows of a square domain
    let pad3 = 2 * (nodes as f64).powf(2.0 / 3.0) as usize; // ~two layers
    vec![
        FootprintRow {
            lattice: "D2Q9",
            nodes,
            st_bytes: footprint_st(nodes, 9),
            mr_paper_bytes: footprint_mr_double(nodes, 6),
            mr_single_bytes: footprint_mr_single(nodes, 6, pad2),
            aa_st_bytes: footprint_aa_st(nodes, 9),
            mr_twist_bytes: footprint_mr_twist(nodes, 6),
            porosity,
            sparse_st_bytes: footprint_sparse_st(fluid, 9),
            sparse_mr_bytes: footprint_sparse_mr(fluid, 6, 9),
        },
        FootprintRow {
            lattice: "D3Q19",
            nodes,
            st_bytes: footprint_st(nodes, 19),
            mr_paper_bytes: footprint_mr_double(nodes, 10),
            mr_single_bytes: footprint_mr_single(nodes, 10, pad3),
            aa_st_bytes: footprint_aa_st(nodes, 19),
            mr_twist_bytes: footprint_mr_twist(nodes, 10),
            porosity,
            sparse_st_bytes: footprint_sparse_st(fluid, 19),
            sparse_mr_bytes: footprint_sparse_mr(fluid, 10, 19),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §4.1: ~33–35 % (2D) and ~47 % (3D) reductions for the paper-model
    /// MR; the single-lattice variant always does better.
    #[test]
    fn paper_reductions() {
        let rows = footprint_table(15_000_000);
        assert!((rows[0].paper_reduction() - 1.0 / 3.0).abs() < 0.01);
        assert!((rows[1].paper_reduction() - 0.474).abs() < 0.01);
        for r in &rows {
            assert!(r.single_reduction() > r.paper_reduction());
        }
    }

    /// The in-place patterns are exact halvings: AA-ST is `st/2` and
    /// twist-MR is `mr_paper/2`, byte-exact, at any node count.
    #[test]
    fn in_place_rows_are_exact_halvings() {
        for nodes in [100usize, 12_345, 15_000_000] {
            for r in footprint_table(nodes) {
                assert_eq!(2 * r.aa_st_bytes, r.st_bytes);
                assert_eq!(2 * r.mr_twist_bytes, r.mr_paper_bytes);
                assert!(r.mr_twist_bytes < r.mr_single_bytes);
                assert!(r.twist_reduction() > r.single_reduction());
            }
        }
    }

    /// The sparse rows track porosity exactly and the compounded sparse-MR
    /// saving beats every dense pattern once the domain is mostly solid.
    #[test]
    fn sparse_rows_track_porosity() {
        let nodes = 1_000_000;
        let full = footprint_table(nodes);
        for r in footprint_table_at(nodes, 0.25) {
            let full_r = full.iter().find(|f| f.lattice == r.lattice).unwrap();
            // Dense rows ignore porosity entirely; sparse state is linear
            // in fluid count — a quarter the fluid, a quarter the bytes.
            assert_eq!(r.st_bytes, full_r.st_bytes);
            assert_eq!(r.mr_twist_bytes, full_r.mr_twist_bytes);
            assert_eq!(4 * r.sparse_st_bytes, full_r.sparse_st_bytes);
            assert_eq!(4 * r.sparse_mr_bytes, full_r.sparse_mr_bytes);
            // At φ = 0.25 sparse MR undercuts even the twist-MR box.
            assert!(r.sparse_mr_bytes < r.mr_twist_bytes);
            assert!(r.sparse_mr_reduction() > r.twist_reduction());
        }
    }

    /// GiB magnitudes quoted in the paper.
    #[test]
    fn paper_gib_figures() {
        const GIB: f64 = (1u64 << 30) as f64;
        let rows = footprint_table(15_000_000);
        assert!((rows[0].st_bytes as f64 / GIB - 2.01).abs() < 0.02);
        assert!((rows[0].mr_paper_bytes as f64 / GIB - 1.34).abs() < 0.02);
        assert!((rows[1].st_bytes as f64 / GIB - 4.25).abs() < 0.02);
        assert!((rows[1].mr_paper_bytes as f64 / GIB - 2.24).abs() < 0.02);
    }
}
