//! The 3D moment-representation kernel — Algorithm 2 in 3D.
//!
//! The x–y plane is decomposed into rectangular column footprints
//! `col_wx × col_wy`; each column spans the full z extent and is assigned
//! one thread block with an `(wx+2)×(wy+2)` halo (Figure 1, right). Tiles
//! are a single lattice layer high — the paper notes (§3.2) that taller 3D
//! tiles "consistently underperform those that are a single lattice point
//! high" — so the sliding shared-memory window holds `3` layers of
//! `wx×wy×Q` populations and the kernel runs one lockstep phase per layer,
//! bottom to top. The global moment lattice is updated in place with a
//! one-layer downward circular shift.

use crate::boundary::boundary_nodes;
use crate::moment_lattice::MomentLattice;
use crate::mr2d::MrBcKernel;
use crate::scheme::MrScheme;
use gpu_sim::exec::{BlockCtx, Launch, LaunchStats, PhasedKernel};
use gpu_sim::memory::Tally;
use gpu_sim::{DeviceSpec, Gpu};
use lbm_core::geometry::{Geometry, NodeType};
use lbm_core::kernels::{self, KernelConsts, LaneBlock, LANES, MAX_M, MAX_Q};
use lbm_lattice::moments::Moments;
use lbm_lattice::Lattice;
use std::marker::PhantomData;

/// Pick the largest column footprint edge ≤ `max` dividing `n`.
pub fn pick_footprint(n: usize, max: usize) -> usize {
    for w in (1..=max.min(n)).rev() {
        if n.is_multiple_of(w) {
            return w;
        }
    }
    1
}

/// Choose the column footprint that minimizes vectorized collide work.
///
/// Each halo-extended row of `wx + 2` nodes is processed in `LANES`-node
/// chunks (tail lanes replicate, so a partial chunk costs as much as a
/// full one), and a block collides `wy + 2` such rows per layer to own
/// `wx × wy` nodes. The lane-slot redundancy is therefore
/// `ceil((wx+2)/LANES)·LANES·(wy+2) / (wx·wy)`, which this searches over
/// all divisor pairs subject to the device's shared-memory window
/// (`wx·wy·3·Q` doubles) and thread-block capacity (`(wx+2)(wy+2)`).
/// Pass `0` for a coordinate to let it float, or a fixed divisor to pin it.
pub fn pick_column_footprint<L: Lattice>(
    device: &DeviceSpec,
    nx: usize,
    ny: usize,
    fix_wx: usize,
    fix_wy: usize,
) -> (usize, usize) {
    let divisors = |n: usize, fixed: usize| -> Vec<usize> {
        if fixed != 0 {
            vec![fixed]
        } else {
            (1..=n).filter(|w| n.is_multiple_of(*w)).collect()
        }
    };
    let mut best = (1usize, 1usize);
    let mut best_cost = f64::INFINITY;
    for &wx in &divisors(nx, fix_wx) {
        for &wy in &divisors(ny, fix_wy) {
            if wx * wy * 3 * L::Q * 8 > device.shared_mem_per_sm {
                continue;
            }
            if (wx + 2) * (wy + 2) > device.max_threads_per_block {
                continue;
            }
            let cost = lane_redundancy(wx, wy);
            // Tie-break toward larger blocks: fewer columns amortize the
            // per-block sliding-window setup.
            if cost < best_cost - 1e-12 || (cost < best_cost + 1e-12 && wx * wy > best.0 * best.1) {
                best = (wx, wy);
                best_cost = cost;
            }
        }
    }
    best
}

/// Lane-slot redundancy of a `wx × wy` column footprint: vectorized collide
/// slots spent per owned node. This is the cost [`pick_column_footprint`]
/// minimizes; the driver gauges the chosen value into obs so bench records
/// expose when a degenerate domain (e.g. `ny < LANES`) forces a redundant
/// footprint instead of silently eating the slowdown.
pub fn lane_redundancy(wx: usize, wy: usize) -> f64 {
    let chunks = (wx + 2).div_ceil(LANES);
    (chunks * LANES * (wy + 2)) as f64 / (wx * wy) as f64
}

struct Mr3dKernel<'a, L: Lattice> {
    /// Moment lattice read at time `t` (equal to `mom_out` for the in-place
    /// circular-shift variant).
    mom_in: &'a MomentLattice,
    /// Moment lattice written at time `t + 1`.
    mom_out: &'a MomentLattice,
    geom: &'a Geometry,
    scheme: &'a MrScheme,
    consts: &'a KernelConsts,
    /// Interior fast-scatter eligibility per node (see
    /// [`crate::boundary::bulk_mask`]).
    bulk: &'a [bool],
    /// The full direction set, and the `cy = +1` / `cy = −1` subsets used
    /// by the y-halo rows (the only directions those rows ever store).
    dirs_all: Vec<usize>,
    dirs_up: Vec<usize>,
    dirs_dn: Vec<usize>,
    t: u64,
    wx: usize,
    wy: usize,
    /// Column footprint origins: block `b` processes
    /// `[cols[b].0, cols[b].0 + wx) × [cols[b].1, cols[b].1 + wy)`.
    cols: &'a [(usize, usize)],
    _l: PhantomData<L>,
}

impl<L: Lattice> PhasedKernel for Mr3dKernel<'_, L> {
    fn name(&self) -> &str {
        match self.scheme {
            MrScheme::Projective => "mr3d-p",
            MrScheme::Recursive(_) => "mr3d-r",
        }
    }

    fn phases(&self) -> usize {
        self.geom.nz
    }

    fn run_phase(&self, z: usize, ctx: &mut BlockCtx) {
        let (nx, ny) = (self.geom.nx, self.geom.ny);
        let (wx, wy) = (self.wx, self.wy);
        let (x0, y0) = self.cols[ctx.block_id];
        let periodic_x = self.geom.periodic[0];

        // --- Collide layer z of the column + full rectangular halo,     ---
        // --- stream into the shared window.                             ---
        // Per x row of the halo-extended footprint, maximal segments of
        // consecutive-index fluid nodes stage their `t`-moments through row
        // spans before the per-node collide + scatter; segments break at
        // solids, non-periodic edges, and periodic-x wraps (`idx` jumps).
        for yi in -1..=(wy as i64) {
            let ys = y0 as i64 + yi;
            if ys < 0 || ys >= ny as i64 {
                continue; // wall-terminated y faces
            }
            let y = ys as usize;
            let mut run: Option<(usize, usize, usize)> = None; // (x_first, idx0, len)
            for xi in -1..=(wx as i64 + 1) {
                let node = if xi <= wx as i64 {
                    let mut xs = x0 as i64 + xi;
                    let in_dom = if xs < 0 || xs >= nx as i64 {
                        periodic_x && {
                            xs = xs.rem_euclid(nx as i64);
                            true
                        }
                    } else {
                        true
                    };
                    in_dom
                        .then(|| {
                            let x = xs as usize;
                            let idx = self.geom.idx(x, y, z);
                            (!self.geom.node_at(idx).is_solid()).then_some((x, idx))
                        })
                        .flatten()
                } else {
                    None
                };
                match (&mut run, node) {
                    (Some((_, idx0, len)), Some((_, idx))) if idx == *idx0 + *len => *len += 1,
                    (r, node) => {
                        if let Some((xf, idx0, len)) = r.take() {
                            // Halo rows can only store into the footprint
                            // through the directions pointing at it.
                            let dirs = if yi < 0 {
                                &self.dirs_up
                            } else if yi >= wy as i64 {
                                &self.dirs_dn
                            } else {
                                &self.dirs_all
                            };
                            self.collide_segment(ctx, y, z, x0, y0, xf, idx0, len, dirs);
                        }
                        *r = node.map(|(x, idx)| (x, idx, 1));
                    }
                }
            }
        }

        // --- Finalize layer z − 1 (complete after this layer streamed). ---
        // New moments of each maximal fluid x-run are staged plane-major in
        // scratch and flushed through row spans.
        if z == 0 {
            return;
        }
        let zf = z - 1;
        for yl in 0..wy {
            let y = y0 + yl;
            let mut xl = 0;
            while xl < wx {
                let idx = self.geom.idx(x0 + xl, y, zf);
                if self.geom.node_at(idx).is_solid() {
                    xl += 1;
                    continue;
                }
                let mut len = 1;
                while xl + len < wx && !self.geom.node_at(idx + len).is_solid() {
                    len += 1;
                }
                if self.consts.scalar {
                    let mut f_loc = [0.0f64; MAX_Q];
                    let mut flat = [0.0f64; MAX_M];
                    for j in 0..len {
                        {
                            let shm = ctx.shared();
                            for (i, f) in f_loc[..L::Q].iter_mut().enumerate() {
                                *f = shm[(((xl + j) * wy + yl) * 3 + zf % 3) * L::Q + i];
                            }
                        }
                        let mnew = Moments::from_f::<L>(&f_loc[..L::Q]);
                        mnew.pack::<L>(&mut flat[..L::M]);
                        let scratch = ctx.scratch();
                        for m in 0..L::M {
                            scratch[m * len + j] = flat[m];
                        }
                    }
                } else {
                    // Fused from_f + pack over LANES-node chunks, writing
                    // the SoA scratch rows directly (tail lanes replicate
                    // the run's last node).
                    let mut fl: LaneBlock = [[0.0f64; LANES]; MAX_Q];
                    let mut j0 = 0;
                    while j0 < len {
                        let cnt = LANES.min(len - j0);
                        {
                            let shm = ctx.shared();
                            for l in 0..LANES {
                                let j = j0 + if l < cnt { l } else { cnt - 1 };
                                let base = (((xl + j) * wy + yl) * 3 + zf % 3) * L::Q;
                                // A node's Q slots are contiguous; the
                                // fixed-length reslice lets the compiler
                                // drop the per-direction bounds checks.
                                let src = &shm[base..base + L::Q];
                                for (i, &v) in src.iter().enumerate() {
                                    fl[i][l] = v;
                                }
                            }
                        }
                        kernels::moments_from_f_lanes::<L>(&fl[..L::Q], ctx.scratch(), len, j0);
                        j0 += LANES;
                    }
                }
                self.mom_out
                    .write_row_from_scratch(ctx, self.t + 1, idx, len, 0);
                xl += len;
            }
        }
    }
}

impl<L: Lattice> Mr3dKernel<'_, L> {
    /// Collide + scatter one maximal segment of consecutive-index fluid
    /// nodes of the x row at `(y, z)`: the segment's `t`-moments are staged
    /// through row spans, then each node is collided and streamed into the
    /// block's shared window exactly as the element-wise path did.
    #[allow(clippy::too_many_arguments)]
    fn collide_segment(
        &self,
        ctx: &mut BlockCtx,
        y: usize,
        z: usize,
        x0: usize,
        y0: usize,
        x_first: usize,
        idx0: usize,
        len: usize,
        dirs: &[usize],
    ) {
        self.mom_in.read_row_to_scratch(ctx, self.t, idx0, len, 0);
        let mut f_star = [0.0f64; MAX_Q];
        if self.consts.scalar {
            let mut flat = [0.0f64; MAX_M];
            for j in 0..len {
                {
                    let scratch = ctx.scratch();
                    for m in 0..L::M {
                        flat[m] = scratch[m * len + j];
                    }
                }
                let m = Moments::unpack::<L>(&flat[..L::M]);
                self.scheme
                    .collide_and_map::<L>(&m, self.consts.tau, &mut f_star[..L::Q]);
                self.scatter_node(ctx, y, z, x0, y0, x_first + j, &f_star, &self.dirs_all);
            }
        } else {
            // Chunked unpack + collide + reconstruct straight off the SoA
            // scratch rows (no strided per-node gather). Interior nodes
            // take the branchless fast scatter: their Q destination slots
            // are base(x) + off[i] with off[] constant along the segment,
            // so the per-direction geometry lookups, bounds checks, and
            // modulo all hoist out of the store loop. Slow lanes (halo
            // rows, column edges, boundary-adjacent nodes) fall back to
            // the reference scatter, which writes the same slots.
            let (wx, wy) = (self.wx, self.wy);
            let row = 3 * L::Q; // shared doubles per (x, y) cell
            let yl = y as i64 - y0 as i64;
            // Masked fast-scatter tables. A bulk node has every neighbor
            // in-domain and fluid (and sits away from the periodic x
            // faces), so `scatter_node` reduces to "store f*[i] at
            // base(x) + off[i] iff the destination lies inside the shared
            // window". Window membership per direction depends only on
            // the segment's row (y + cy in the owned rows) and the lane's
            // x-category: left halo / left edge / interior / right edge /
            // right halo. Precompute one (dir, offset) list per category;
            // lanes then take branchless masked stores, with a single
            // range assert standing in for the per-store bounds checks.
            const XCATS: usize = 5;
            let mut tab = [[(0usize, 0i64); MAX_Q]; XCATS];
            let mut tlen = [0usize; XCATS];
            let mut tmin = [i64::MAX; XCATS];
            let mut tmax = [i64::MIN; XCATS];
            if wx >= 3 {
                for &i in dirs {
                    let c = L::C[i];
                    let (cx, cy) = (c[0] as i64, c[1] as i64);
                    let ydl = yl + cy;
                    if ydl < 0 || ydl >= wy as i64 {
                        continue; // dest row outside the window: dropped
                    }
                    let off = cx * (wy * row) as i64
                        + ydl * row as i64
                        + (z as i64 + c[2] as i64).rem_euclid(3) * L::Q as i64
                        + i as i64;
                    let ok = [cx == 1, cx >= 0, true, cx <= 0, cx == -1];
                    for (cat, &k) in ok.iter().enumerate() {
                        if k {
                            tab[cat][tlen[cat]] = (i, off);
                            tlen[cat] += 1;
                            tmin[cat] = tmin[cat].min(off);
                            tmax[cat] = tmax[cat].max(off);
                        }
                    }
                }
            }
            let mut fs: [[f64; LANES]; MAX_Q] = [[0.0f64; LANES]; MAX_Q];
            let mut j0 = 0;
            while j0 < len {
                {
                    let scratch = ctx.scratch();
                    match self.scheme {
                        MrScheme::Projective => kernels::mr_p_collide_chunk::<L>(
                            scratch,
                            len,
                            j0,
                            self.consts.omega,
                            dirs,
                            &mut fs,
                        ),
                        MrScheme::Recursive(basis) => kernels::mr_r_collide_chunk::<L>(
                            scratch,
                            len,
                            j0,
                            self.consts.omega,
                            basis,
                            dirs,
                            &mut fs,
                        ),
                    }
                }
                let cnt = LANES.min(len - j0);
                for l in 0..cnt {
                    let x = x_first + j0 + l;
                    let xl = x as i64 - x0 as i64;
                    if wx >= 3 && (-1..=wx as i64).contains(&xl) && self.bulk[idx0 + j0 + l] {
                        let cat = match xl {
                            -1 => 0,
                            0 => 1,
                            v if v == wx as i64 - 1 => 3,
                            v if v == wx as i64 => 4,
                            _ => 2,
                        };
                        let n = tlen[cat];
                        if n > 0 {
                            let base = xl * (wy * row) as i64;
                            let shm = ctx.shared();
                            // One range check covers the whole masked
                            // list: every offset lies in [tmin, tmax].
                            assert!(
                                base + tmin[cat] >= 0 && ((base + tmax[cat]) as usize) < shm.len(),
                                "fast scatter out of the shared window"
                            );
                            for &(i, o) in &tab[cat][..n] {
                                // Safety: tmin ≤ o ≤ tmax, so base + o is
                                // within the range asserted above.
                                unsafe {
                                    *shm.get_unchecked_mut((base + o) as usize) = fs[i][l];
                                }
                            }
                        }
                    } else {
                        for &i in dirs {
                            f_star[i] = fs[i][l];
                        }
                        self.scatter_node(ctx, y, z, x0, y0, x, &f_star, dirs);
                    }
                }
                j0 += LANES;
            }
        }
    }

    /// Stream one collided node into the block's shared window (the
    /// per-direction scatter of the original element-wise path, verbatim;
    /// shared slot: ((xl·wy + yl)·3 + z mod 3)·Q + dir).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn scatter_node(
        &self,
        ctx: &mut BlockCtx,
        y: usize,
        z: usize,
        x0: usize,
        y0: usize,
        x: usize,
        f_star: &[f64; MAX_Q],
        dirs: &[usize],
    ) {
        let (nx, ny, nz) = (self.geom.nx, self.geom.ny, self.geom.nz);
        let (wx, wy) = (self.wx, self.wy);
        let periodic_x = self.geom.periodic[0];
        let sh =
            |xl: usize, yl: usize, zz: usize, i: usize| ((xl * wy + yl) * 3 + zz % 3) * L::Q + i;
        let ys = y as i64;
        let xs = x as i64;
        let src_in_col = x >= x0 && x < x0 + wx && y >= y0 && y < y0 + wy;
        for &i in dirs {
            let c = L::C[i];
            let mut xd = xs + c[0] as i64;
            let yd = ys + c[1] as i64;
            let zd = z as i64 + c[2] as i64;
            if xd < 0 || xd >= nx as i64 {
                if periodic_x {
                    xd = xd.rem_euclid(nx as i64);
                } else {
                    continue; // leaves through an x face (BC kernel)
                }
            }
            if yd < 0 || yd >= ny as i64 || zd < 0 || zd >= nz as i64 {
                continue; // beyond wall-terminated faces
            }
            let (xd, yd, zd) = (xd as usize, yd as usize, zd as usize);
            let dest = self.geom.node(xd, yd, zd);
            if dest.is_solid() {
                if src_in_col {
                    let gain = match dest {
                        NodeType::MovingWall(uw) => self.consts.gains.gain(L::OPP[i], uw),
                        _ => 0.0,
                    };
                    let slot = sh(x - x0, y - y0, z, L::OPP[i]);
                    ctx.shared()[slot] = f_star[i] + gain;
                }
                continue;
            }
            if xd >= x0 && xd < x0 + wx && yd >= y0 && yd < y0 + wy {
                let slot = sh(xd - x0, yd - y0, zd, i);
                ctx.shared()[slot] = f_star[i];
            }
        }
    }
}

/// Launch the 3D MR column kernel over an explicit set of footprint
/// origins. Reads moments at time `t` from `mom_in` and writes `t + 1` into
/// `mom_out` — the multi-device drivers pass two distinct (shift-0)
/// lattices, since splitting one step across sequential launches would
/// break the in-place circular shift's read-before-clobber ordering.
/// Per-node arithmetic is identical to `MrSim3D::step`, so column subsets
/// compose bitwise.
#[allow(clippy::too_many_arguments)]
pub fn launch_mr3d_columns<L: Lattice>(
    gpu: &Gpu,
    mom_in: &MomentLattice,
    mom_out: &MomentLattice,
    geom: &Geometry,
    scheme: &MrScheme,
    consts: &KernelConsts,
    bulk: &[bool],
    t: u64,
    wx: usize,
    wy: usize,
    cols: &[(usize, usize)],
) -> LaunchStats {
    assert!(!cols.is_empty(), "no columns to launch");
    assert_eq!(bulk.len(), geom.len(), "bulk mask must cover the domain");
    for &(x0, y0) in cols {
        assert!(
            x0 + wx <= geom.nx && y0 + wy <= geom.ny,
            "column ({x0}, {y0}) overruns the domain"
        );
    }
    gpu.launch_lockstep(
        &Launch {
            blocks: cols.len(),
            threads_per_block: (wx + 2) * (wy + 2),
            shared_doubles: wx * wy * 3 * L::Q,
            // Row-span staging: one segment of up to wx + 2 nodes (the
            // collide loop's halo-extended x row), M planes.
            scratch_doubles: L::M * (wx + 2),
        },
        &Mr3dKernel::<L> {
            mom_in,
            mom_out,
            geom,
            scheme,
            consts,
            bulk,
            dirs_all: kernels::dirs_all::<L>(),
            dirs_up: kernels::dirs_with_cy::<L>(1),
            dirs_dn: kernels::dirs_with_cy::<L>(-1),
            t,
            wx,
            wy,
            cols,
            _l: PhantomData,
        },
    )
}

/// Driver for a 3D moment-representation simulation (MR-P or MR-R).
pub struct MrSim3D<L: Lattice> {
    gpu: Gpu,
    geom: Geometry,
    mom: MomentLattice,
    scheme: MrScheme,
    tau: f64,
    consts: KernelConsts,
    bulk: Vec<bool>,
    wx: usize,
    wy: usize,
    boundary: Vec<(usize, usize, usize)>,
    t: u64,
    accum: Tally,
    profiler: Option<std::sync::Arc<gpu_sim::profiler::Profiler>>,
    obs: Option<std::sync::Arc<obs::Obs>>,
    monitor: Option<obs::PhysicsMonitor>,
    _l: PhantomData<L>,
}

impl<L: Lattice> MrSim3D<L> {
    /// Build a 3D MR simulation over a duct-type geometry: walls on the
    /// y and z extreme faces are mandatory; x faces periodic or
    /// inlet/outlet. Column footprint is chosen automatically.
    pub fn new(device: DeviceSpec, geom: Geometry, scheme: MrScheme, tau: f64) -> Self {
        Self::with_config(device, geom, scheme, tau, 0, 0)
    }

    /// Explicit column footprint (`0` = auto).
    pub fn with_config(
        device: DeviceSpec,
        geom: Geometry,
        scheme: MrScheme,
        tau: f64,
        col_wx: usize,
        col_wy: usize,
    ) -> Self {
        assert!(geom.nz > 1, "MrSim3D requires a 3D domain");
        assert_eq!(
            L::REACH,
            1,
            "the MR sliding window requires unit streaming reach"
        );
        assert!(
            !geom.periodic[1] && !geom.periodic[2],
            "MR requires wall-terminated y and z faces"
        );
        for y in 0..geom.ny {
            for x in 0..geom.nx {
                assert!(
                    geom.node(x, y, 0).is_solid() && geom.node(x, y, geom.nz - 1).is_solid(),
                    "MR requires walls at z = 0 and z = nz−1"
                );
            }
        }
        for z in 0..geom.nz {
            for x in 0..geom.nx {
                assert!(
                    geom.node(x, 0, z).is_solid() && geom.node(x, geom.ny - 1, z).is_solid(),
                    "MR requires walls at y = 0 and y = ny−1"
                );
            }
        }
        let (wx, wy) = pick_column_footprint::<L>(&device, geom.nx, geom.ny, col_wx, col_wy);
        assert!(
            geom.nx.is_multiple_of(wx) && geom.ny.is_multiple_of(wy),
            "footprint must tile the plane"
        );
        let boundary = boundary_nodes(&geom);
        if !boundary.is_empty() {
            assert!(geom.nx >= 5, "FD boundaries need nx ≥ 5");
        }
        let n = geom.len();
        let layer = geom.nx * geom.ny;
        let mom = MomentLattice::new(n, L::M, layer, 2 * layer).with_touch_tracking();
        let bulk = crate::boundary::bulk_mask::<L>(&geom);
        let mut sim = MrSim3D {
            gpu: Gpu::new(device),
            geom,
            mom,
            scheme,
            tau,
            consts: KernelConsts::new::<L>(tau),
            bulk,
            wx,
            wy,
            boundary,
            t: 0,
            accum: Tally::default(),
            profiler: None,
            obs: None,
            monitor: None,
            _l: PhantomData,
        };
        sim.init_with(|_, _, _| (1.0, [0.0; 3]));
        sim
    }

    /// Limit the CPU worker threads backing the substrate.
    pub fn with_cpu_threads(mut self, n: usize) -> Self {
        self.gpu = self.gpu.with_cpu_threads(n);
        self
    }

    /// Force the scalar (per-node) reference kernels instead of the
    /// chunk-vectorized ones — the equivalence-test oracle.
    pub fn with_scalar_kernels(mut self) -> Self {
        self.consts.scalar = true;
        self
    }

    /// Override the minimum launch size dispatched to the worker pool
    /// (see `gpu_sim::Gpu::with_parallel_threshold`); `0` forces pooling
    /// for every multi-block launch.
    pub fn with_parallel_threshold(mut self, items: usize) -> Self {
        self.gpu = self.gpu.with_parallel_threshold(items);
        self
    }

    /// Record every kernel launch into a shared profiler (the substrate's
    /// nvvp/rocprof analog): per-kernel byte counts and B/F.
    pub fn with_profiler(mut self, p: std::sync::Arc<gpu_sim::profiler::Profiler>) -> Self {
        self.profiler = Some(p);
        self
    }

    /// Attach an observability hub: the driver emits a `step` span per
    /// timestep and the device nests kernel/phase spans and publishes
    /// launch metrics under it.
    pub fn with_obs(mut self, obs: std::sync::Arc<obs::Obs>) -> Self {
        self.set_obs(obs);
        self
    }

    /// In-place [`MrSim3D::with_obs`] (the `Simulation` trait surface).
    /// Publishes the chosen column footprint's lane redundancy as a gauge,
    /// so bench records expose degenerate-domain fallbacks (e.g.
    /// `ny < LANES`) instead of hiding them in the picker.
    pub fn set_obs(&mut self, obs: std::sync::Arc<obs::Obs>) {
        obs.metrics.gauge_set(
            "mr3d_lane_redundancy",
            &[("pattern", self.pattern_label())],
            lane_redundancy(self.wx, self.wy),
        );
        self.gpu.set_obs(obs.clone());
        self.obs = Some(obs);
    }

    /// Attach (or clear) the fleet trace context — the job identity the
    /// serve scheduler assigned this simulation. Step and kernel spans
    /// carry its args from now on; stepping and tallies are unaffected.
    pub fn set_trace_ctx(&mut self, ctx: Option<obs::TraceCtx>) {
        self.gpu.set_trace_ctx(ctx);
    }

    /// Attach a physics monitor sampling the macroscopic fields every
    /// `cfg.cadence` steps (mass/momentum/max-|u|/NaN guards).
    pub fn with_monitor(mut self, cfg: obs::MonitorConfig) -> Self {
        self.monitor = Some(obs::PhysicsMonitor::new(cfg));
        self
    }

    /// The attached physics monitor, if any.
    pub fn monitor(&self) -> Option<&obs::PhysicsMonitor> {
        self.monitor.as_ref()
    }

    /// Enable strict race checking on the moment lattice (tests).
    pub fn with_racecheck_strict(mut self) -> Self {
        assert_eq!(self.t, 0, "attach the race checker before stepping");
        let dummy = MomentLattice::new(1, L::M, 0, 0);
        let old = std::mem::replace(&mut self.mom, dummy);
        self.mom = old.with_racecheck_strict();
        self
    }

    /// Switch to the single-lattice **moment twist** variant: parity-indexed
    /// plane storage replaces the one-layer circular shift *and* its
    /// two-layer padding — exactly `M·8` resident bytes per node. Safety
    /// rests on the lockstep phase lag alone: every block global-reads layer
    /// `z` when its window reaches it (phase `z − 1`) and global-writes it
    /// two phases later (phase `z + 1`), so under the bulk-synchronous
    /// phases no cell is read after being rewritten, whichever plane the
    /// parity mapping routes the write to; the strict race checker verifies
    /// this in the tests. Must be called before the first step.
    pub fn with_twist(mut self) -> Self {
        assert_eq!(self.t, 0, "switch storage before stepping");
        let n = self.geom.len();
        self.mom = MomentLattice::new(n, L::M, 0, 0)
            .with_parity_twist()
            .with_touch_tracking();
        self.init_with(|_, _, _| (1.0, [0.0; 3]));
        self
    }

    /// Whether this driver runs the parity-twist storage variant.
    pub fn is_twist(&self) -> bool {
        self.mom.parity_twist()
    }

    /// Monitor/metric pattern label for this configuration.
    fn pattern_label(&self) -> &'static str {
        if self.mom.parity_twist() {
            "mr3d-twist"
        } else {
            "mr3d"
        }
    }

    /// Initialize every node's moments from a macroscopic field.
    pub fn init_with(&mut self, field: impl Fn(usize, usize, usize) -> (f64, [f64; 3])) {
        for idx in 0..self.geom.len() {
            let (x, y, z) = self.geom.coords(idx);
            let (rho, u) = match self.geom.node_at(idx) {
                NodeType::Inlet(u_bc) => (field(x, y, z).0, u_bc),
                NodeType::Outlet(rho_bc) => (rho_bc, field(x, y, z).1),
                _ => field(x, y, z),
            };
            let m = Moments {
                rho,
                u,
                pi: Moments::pi_eq(rho, u, L::D),
            };
            self.mom.set_moments::<L>(0, idx, &m);
        }
        self.t = 0;
        self.accum = Tally::default();
    }

    /// Advance one timestep.
    pub fn step(&mut self) {
        let obs = self.obs.clone();
        let _step_span = obs.as_ref().map(|o| {
            let mut args = vec![("t", self.t.to_string())];
            if let Some(ctx) = self.gpu.trace_ctx() {
                ctx.append_args(&mut args);
            }
            o.tracer.span_args("driver", "step", &args)
        });
        let cols_x = self.geom.nx / self.wx;
        let blocks = cols_x * (self.geom.ny / self.wy);
        let cols: Vec<(usize, usize)> = (0..blocks)
            .map(|b| ((b % cols_x) * self.wx, (b / cols_x) * self.wy))
            .collect();
        let stats = launch_mr3d_columns::<L>(
            &self.gpu,
            &self.mom,
            &self.mom,
            &self.geom,
            &self.scheme,
            &self.consts,
            &self.bulk,
            self.t,
            self.wx,
            self.wy,
            &cols,
        );
        if let Some(p) = &self.profiler {
            p.record(&stats, self.geom.fluid_count() as u64);
        }
        self.accum.merge(&stats.tally);

        if !self.boundary.is_empty() {
            let bs = 64;
            let stats = self.gpu.launch(
                &Launch::simple(self.boundary.len().div_ceil(bs), bs),
                &MrBcKernel::<L> {
                    mom: &self.mom,
                    geom: &self.geom,
                    tau: self.tau,
                    t_next: self.t + 1,
                    nodes: &self.boundary,
                    block_size: bs,
                    _l: PhantomData,
                },
            );
            if let Some(p) = &self.profiler {
                p.record(&stats, self.boundary.len() as u64);
            }
            self.accum.merge(&stats.tally);
        }

        self.t += 1;
        self.sample_monitor();
    }

    /// Cadence-gated monitor sampling: field extraction only happens on
    /// sampling steps.
    fn sample_monitor(&mut self) {
        if !self.monitor.as_ref().is_some_and(|m| m.due(self.t)) {
            return;
        }
        let (rho, u) = self.macro_fields();
        let s = self.monitor.as_mut().unwrap().observe(self.t, &rho, &u);
        if let Some(o) = &self.obs {
            let pat = self.pattern_label();
            o.metrics
                .gauge_set("monitor_mass", &[("pattern", pat)], s.mass);
            o.metrics
                .gauge_set("monitor_max_u", &[("pattern", pat)], s.max_u);
            if s.nonfinite > 0 {
                o.tracer.instant(
                    "monitor",
                    "nonfinite",
                    &[
                        ("step", s.step.to_string()),
                        ("count", s.nonfinite.to_string()),
                    ],
                );
            }
        }
    }

    /// Advance `steps` timesteps, then force a final monitor sample so a
    /// run that ends off the sampling cadence still has its tail checked.
    pub fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
        self.finish_monitor();
    }

    /// Force a final monitor sample at the current step (no-op without a
    /// monitor, or when the last step was already sampled). The flushed
    /// sample is published to the hub like any cadence sample, so monitor
    /// series stay gap-free across run ends *and* fleet evictions.
    pub fn finish_monitor(&mut self) {
        if self.monitor.is_none() {
            return;
        }
        let (rho, u) = self.macro_fields();
        let s = self.monitor.as_mut().unwrap().finish(self.t, &rho, &u);
        if let (Some(s), Some(o)) = (s, &self.obs) {
            let pat = self.pattern_label();
            o.metrics
                .gauge_set("monitor_mass", &[("pattern", pat)], s.mass);
            o.metrics
                .gauge_set("monitor_max_u", &[("pattern", pat)], s.max_u);
            o.tracer
                .instant("monitor", "flush", &[("step", s.step.to_string())]);
        }
    }

    /// Mutable access to the physics monitor (recovery rollback).
    pub fn monitor_mut(&mut self) -> Option<&mut obs::PhysicsMonitor> {
        self.monitor.as_mut()
    }

    /// Attach a deterministic fault plan to the device and the moment
    /// storage (see `gpu_sim::FaultPlan`).
    pub fn with_fault_plan(mut self, plan: std::sync::Arc<gpu_sim::FaultPlan>) -> Self {
        self.gpu.set_fault_plan(plan.clone());
        self.mom.set_fault_plan(plan);
        self
    }

    /// FNV-1a fingerprint of the macroscopic fields (bitwise-sensitive).
    pub fn field_checksum(&self) -> u64 {
        let (rho, u) = self.macro_fields();
        lbm_core::io::field_checksum(&rho, &u)
    }

    /// Serialize the full solver state (raw moment lattice, step counter,
    /// traffic accumulator) — see [`MrSim2D::checkpoint`](crate::MrSim2D)
    /// for the raw-snapshot rationale.
    /// Twist runs tag the flavor with the step parity
    /// (`"mr3d-twist+even"` / `"mr3d-twist+odd"`), mirroring
    /// [`MrSim2D`](crate::MrSim2D): the plane order is part of the storage
    /// contract, so a restore may only land on the matching half-cycle.
    pub fn checkpoint(&self) -> Vec<u8> {
        let flavor = if self.is_twist() {
            lbm_core::io::parity_flavor("mr3d-twist", self.t)
        } else {
            "mr3d".to_string()
        };
        let mut w = lbm_core::io::CheckpointWriter::new(&flavor);
        w.put_u64(self.geom.nx as u64)
            .put_u64(self.geom.ny as u64)
            .put_u64(self.geom.nz as u64)
            .put_u64(L::M as u64)
            .put_u64(self.t)
            .put_u64(self.accum.reads)
            .put_u64(self.accum.writes)
            .put_u64(self.accum.bytes_read)
            .put_u64(self.accum.bytes_written)
            .put_u64(self.accum.dram_bytes_read)
            .put_u64(self.accum.l2_read_hits)
            .put_f64s(&self.mom.host_snapshot());
        w.finish()
    }

    /// Restore a [`MrSim3D::checkpoint`] snapshot taken on an identically
    /// configured simulation.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), lbm_core::io::CheckpointError> {
        use lbm_core::io::{CheckpointError, CheckpointReader};
        let (mut r, twist_parity) = if self.is_twist() {
            let (r, which) =
                CheckpointReader::open_any(bytes, &["mr3d-twist+even", "mr3d-twist+odd"])?;
            (r, Some(which as u64))
        } else {
            (CheckpointReader::open(bytes, "mr3d")?, None)
        };
        r.expect_u64(self.geom.nx as u64, "nx")?;
        r.expect_u64(self.geom.ny as u64, "ny")?;
        r.expect_u64(self.geom.nz as u64, "nz")?;
        r.expect_u64(L::M as u64, "M")?;
        let t = r.take_u64()?;
        if let Some(parity) = twist_parity {
            if t % 2 != parity {
                return Err(CheckpointError::Mismatch(format!(
                    "flavor parity ({}) disagrees with stored step counter {t}",
                    if parity == 0 { "even" } else { "odd" }
                )));
            }
        }
        self.t = t;
        self.accum = Tally {
            reads: r.take_u64()?,
            writes: r.take_u64()?,
            bytes_read: r.take_u64()?,
            bytes_written: r.take_u64()?,
            dram_bytes_read: r.take_u64()?,
            l2_read_hits: r.take_u64()?,
        };
        let raw = r.take_f64s(self.mom.raw_len())?;
        self.mom.host_restore(&raw);
        if let Some(m) = self.monitor.as_mut() {
            m.rollback_to(self.t);
        }
        Ok(())
    }

    /// Completed timesteps.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Domain geometry.
    pub fn geom(&self) -> &Geometry {
        &self.geom
    }

    /// Column footprint `(wx, wy)`.
    pub fn config(&self) -> (usize, usize) {
        (self.wx, self.wy)
    }

    /// Aggregate traffic over all steps so far.
    pub fn traffic(&self) -> Tally {
        self.accum
    }

    /// Measured DRAM bytes per fluid lattice update.
    pub fn measured_bpf(&self) -> f64 {
        let updates = self.geom.fluid_count() as u64 * self.t;
        if updates == 0 {
            return 0.0;
        }
        self.accum.dram_bytes() as f64 / updates as f64
    }

    /// Device-memory footprint of the single moment lattice.
    pub fn footprint_bytes(&self) -> usize {
        self.mom.size_bytes()
    }

    /// Moments of a node at the current time.
    pub fn moments_at(&self, x: usize, y: usize, z: usize) -> Moments {
        self.mom.get_moments::<L>(self.t, self.geom.idx(x, y, z))
    }

    /// Density and velocity fields in one pass over the moment lattice
    /// (solid nodes report zero). This is what the physics monitor samples.
    pub fn macro_fields(&self) -> (Vec<f64>, Vec<[f64; 3]>) {
        let n = self.geom.len();
        let mut rho_out = vec![0.0; n];
        let mut u_out = vec![[0.0; 3]; n];
        for idx in 0..n {
            if self.geom.node_at(idx).is_fluid_like() {
                let m = self.mom.get_moments::<L>(self.t, idx);
                rho_out[idx] = m.rho;
                u_out[idx] = m.u;
            }
        }
        (rho_out, u_out)
    }

    /// Velocity field (solid nodes report zero).
    pub fn velocity_field(&self) -> Vec<[f64; 3]> {
        self.macro_fields().1
    }

    /// Density field (solid nodes report zero).
    pub fn density_field(&self) -> Vec<f64> {
        self.macro_fields().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbm_core::collision::{Projective, Recursive};
    use lbm_core::Solver;
    use lbm_lattice::{D3Q19, D3Q27};

    fn assert_fields_close(a: &[[f64; 3]], b: &[[f64; 3]], tol: f64, what: &str) {
        for (i, (ua, ub)) in a.iter().zip(b).enumerate() {
            for k in 0..3 {
                assert!(
                    (ua[k] - ub[k]).abs() < tol,
                    "{what}: u[{i}][{k}] {} vs {}",
                    ua[k],
                    ub[k]
                );
            }
        }
    }

    /// MR-P in 3D reproduces the reference projective solver on a duct.
    #[test]
    fn mr_p_matches_reference_duct() {
        let geom = Geometry::channel_3d(12, 8, 8, 0.03);
        let mut mr: MrSim3D<D3Q19> = MrSim3D::new(
            DeviceSpec::v100(),
            geom.clone(),
            MrScheme::projective(),
            0.7,
        )
        .with_cpu_threads(4);
        let mut st: Solver<D3Q19, _> = Solver::new(geom, Projective::new(0.7)).with_threads(2);
        mr.run(12);
        st.run(12);
        assert_fields_close(&mr.velocity_field(), &st.velocity_field(), 1e-10, "3D MR-P");
    }

    /// MR-R in 3D reproduces the reference recursive solver, with the
    /// strict race checker active on a periodic-x duct.
    #[test]
    fn mr_r_matches_reference_with_racecheck() {
        let mut geom = Geometry::new(8, 8, 8, [true, false, false]);
        // Wall off the y and z faces, keep x periodic.
        for z in 0..8 {
            for x in 0..8 {
                geom.set(x, 0, z, NodeType::Wall);
                geom.set(x, 7, z, NodeType::Wall);
            }
        }
        for y in 0..8 {
            for x in 0..8 {
                geom.set(x, y, 0, NodeType::Wall);
                geom.set(x, y, 7, NodeType::Wall);
            }
        }
        let init = |x: usize, y: usize, z: usize| {
            (
                1.0,
                [
                    0.02 * ((y + z) as f64 * 0.6).sin(),
                    0.01 * (x as f64 * 0.8).cos(),
                    0.0,
                ],
            )
        };
        let mut mr: MrSim3D<D3Q19> = MrSim3D::new(
            DeviceSpec::mi100(),
            geom.clone(),
            MrScheme::recursive::<D3Q19>(),
            0.8,
        )
        .with_cpu_threads(4)
        .with_racecheck_strict();
        mr.init_with(init);
        let mut st: Solver<D3Q19, _> =
            Solver::new(geom, Recursive::new::<D3Q19>(0.8)).with_threads(2);
        st.init_with(init);
        mr.run(10);
        st.run(10);
        assert_fields_close(&mr.velocity_field(), &st.velocity_field(), 1e-12, "3D MR-R");
    }

    /// Measured B/F reproduces Table 2: 2M·8 = 160 for D3Q19.
    #[test]
    fn measured_bpf_matches_table2() {
        let mut geom = Geometry::new(12, 12, 10, [true, false, false]);
        for z in 0..10 {
            for x in 0..12 {
                geom.set(x, 0, z, NodeType::Wall);
                geom.set(x, 11, z, NodeType::Wall);
            }
        }
        for y in 0..12 {
            for x in 0..12 {
                geom.set(x, y, 0, NodeType::Wall);
                geom.set(x, y, 9, NodeType::Wall);
            }
        }
        let mut mr: MrSim3D<D3Q19> =
            MrSim3D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8).with_cpu_threads(2);
        mr.run(2);
        let bpf = mr.measured_bpf();
        assert!((bpf - 160.0).abs() < 4.0, "B/F = {bpf}");
    }

    /// The D3Q27 future-work lattice runs through the same kernel.
    #[test]
    fn q27_duct_runs() {
        let geom = Geometry::channel_3d(8, 6, 6, 0.02);
        let mut mr: MrSim3D<D3Q27> = MrSim3D::new(
            DeviceSpec::v100(),
            geom,
            MrScheme::recursive::<D3Q27>(),
            0.8,
        )
        .with_cpu_threads(4);
        mr.run(5);
        let u = mr.velocity_field();
        assert!(u.iter().all(|v| v.iter().all(|c| c.is_finite())));
        // Flow enters: some forward motion near the inlet.
        let g = mr.geom();
        assert!(mr.moments_at(1, 3, 3).u[0].abs() < 1.0);
        let _ = g;
    }

    #[test]
    #[should_panic(expected = "wall-terminated y and z")]
    fn rejects_periodic_lateral_faces() {
        let geom = Geometry::periodic_3d(8, 8, 8);
        let _ = MrSim3D::<D3Q19>::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8);
    }

    #[test]
    #[should_panic(expected = "walls at z")]
    fn rejects_missing_z_walls() {
        // Non-periodic but all-fluid: the wall check fires.
        let geom = Geometry::new(8, 8, 8, [true, false, false]);
        let _ = MrSim3D::<D3Q19>::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8);
    }

    /// Executor determinism: identical fields and traffic tally under 1, 3,
    /// and 8 CPU threads — the pool's dynamic block scheduling must be
    /// invisible to both physics and accounting.
    #[test]
    fn executor_determinism_across_thread_counts() {
        let init = |x: usize, y: usize, z: usize| {
            (
                1.0 + 0.005 * ((x + y + z) as f64 * 0.5).sin(),
                [
                    0.02 * ((y + z) as f64 * 0.6).sin(),
                    0.01 * (x as f64 * 0.4).cos(),
                    0.01 * ((x + y) as f64 * 0.3).sin(),
                ],
            )
        };
        let run = |threads: usize| {
            let geom = Geometry::channel_3d(12, 8, 8, 0.03);
            let mut sim: MrSim3D<D3Q19> =
                MrSim3D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.7)
                    .with_cpu_threads(threads)
                    .with_parallel_threshold(0); // force pooled dispatch at any size
            sim.init_with(init);
            sim.run(6);
            (sim.velocity_field(), sim.density_field(), sim.traffic())
        };
        let base = run(1);
        for threads in [3, 8] {
            let got = run(threads);
            assert_eq!(base.0, got.0, "velocity diverges at {threads} threads");
            assert_eq!(base.1, got.1, "density diverges at {threads} threads");
            assert_eq!(base.2, got.2, "tally diverges at {threads} threads");
        }
    }

    /// A walled duct with periodic x — the twist test domain.
    fn walled_duct(nx: usize, ny: usize, nz: usize) -> Geometry {
        let mut geom = Geometry::new(nx, ny, nz, [true, false, false]);
        for z in 0..nz {
            for x in 0..nx {
                geom.set(x, 0, z, NodeType::Wall);
                geom.set(x, ny - 1, z, NodeType::Wall);
            }
        }
        for y in 0..ny {
            for x in 0..nx {
                geom.set(x, y, 0, NodeType::Wall);
                geom.set(x, y, nz - 1, NodeType::Wall);
            }
        }
        geom
    }

    /// The 3D twist contract: bitwise equal to the circular-shift driver at
    /// every step on both devices, with the strict race checker proving the
    /// reversed-plane in-place update safe under the lockstep phase lag.
    #[test]
    fn twist_matches_shift_bitwise_every_step() {
        let init = |x: usize, y: usize, z: usize| {
            (
                1.0 + 0.005 * ((x + y + z) as f64 * 0.5).sin(),
                [
                    0.02 * ((y + z) as f64 * 0.6).sin(),
                    0.01 * (x as f64 * 0.4).cos(),
                    0.01 * ((x + y) as f64 * 0.3).sin(),
                ],
            )
        };
        for dev in [DeviceSpec::v100(), DeviceSpec::mi100()] {
            let geom = walled_duct(8, 8, 8);
            let mut twist: MrSim3D<D3Q19> =
                MrSim3D::new(dev.clone(), geom.clone(), MrScheme::projective(), 0.8)
                    .with_twist()
                    .with_racecheck_strict()
                    .with_cpu_threads(3)
                    .with_parallel_threshold(0);
            twist.init_with(init);
            let mut shift: MrSim3D<D3Q19> =
                MrSim3D::new(dev, geom, MrScheme::projective(), 0.8).with_cpu_threads(2);
            shift.init_with(init);
            for step in 1..=5u64 {
                twist.step();
                shift.step();
                assert_eq!(
                    twist.field_checksum(),
                    shift.field_checksum(),
                    "3D twist diverges at step {step}"
                );
            }
        }
    }

    /// 3D twist residency is exactly `M·8` bytes per node — the circular
    /// shift's two-layer padding is gone too.
    #[test]
    fn twist_footprint_exact() {
        let geom = walled_duct(8, 8, 8);
        let twist: MrSim3D<D3Q19> = MrSim3D::new(
            DeviceSpec::v100(),
            geom.clone(),
            MrScheme::projective(),
            0.8,
        )
        .with_twist();
        assert_eq!(twist.footprint_bytes(), 10 * 8 * 8 * 8 * 8);
        let shift: MrSim3D<D3Q19> =
            MrSim3D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8);
        assert!(twist.footprint_bytes() < shift.footprint_bytes());
    }

    /// 3D twist checkpoints round-trip at odd parity with the parity-tagged
    /// flavor.
    #[test]
    fn twist_checkpoint_round_trips_at_odd_parity() {
        let init =
            |_x: usize, y: usize, z: usize| (1.0, [0.02 * ((y + z) as f64 * 0.7).sin(), 0.0, 0.0]);
        let mk = || {
            let mut s: MrSim3D<D3Q19> = MrSim3D::new(
                DeviceSpec::v100(),
                walled_duct(8, 6, 6),
                MrScheme::projective(),
                0.8,
            )
            .with_cpu_threads(2)
            .with_twist();
            s.init_with(init);
            s
        };
        let mut a = mk();
        a.run(3);
        let blob = a.checkpoint();
        a.run(3);
        let mut b = mk();
        b.restore(&blob).unwrap();
        assert_eq!(b.steps(), 3);
        b.run(3);
        assert_eq!(a.field_checksum(), b.field_checksum());
    }

    /// The footprint picker's degenerate-domain fallback (`ny < LANES`)
    /// must still return a valid tiling, and its redundancy is the
    /// documented lane cost — the value the driver gauges into obs.
    #[test]
    fn pick_column_footprint_degenerate_ny_regression() {
        // ny = 4 < LANES = 8: every candidate wy ∈ {1, 2, 4} wastes tail
        // lanes; the picker must still return divisors and the redundancy
        // formula must expose the waste rather than hide it.
        let (wx, wy) = pick_column_footprint::<D3Q19>(&DeviceSpec::v100(), 16, 4, 0, 0);
        assert!(
            16 % wx == 0 && 4 % wy == 0,
            "non-divisor footprint {wx}×{wy}"
        );
        let r = lane_redundancy(wx, wy);
        assert!(
            (1.0..=16.0).contains(&r),
            "degenerate redundancy {r} out of band for {wx}×{wy}"
        );
        // The picker found the minimum over all admissible pairs.
        for cand_wx in [1usize, 2, 4, 8, 16] {
            for cand_wy in [1usize, 2, 4] {
                if cand_wx * cand_wy * 3 * 19 * 8 > DeviceSpec::v100().shared_mem_per_sm
                    || (cand_wx + 2) * (cand_wy + 2) > DeviceSpec::v100().max_threads_per_block
                {
                    continue;
                }
                assert!(
                    r <= lane_redundancy(cand_wx, cand_wy) + 1e-12,
                    "picker chose {wx}×{wy} (r={r}) but {cand_wx}×{cand_wy} is cheaper"
                );
            }
        }
        // And the driver exposes the chosen redundancy as a gauge.
        let obs = obs::Obs::shared();
        let mut mr: MrSim3D<D3Q19> = MrSim3D::new(
            DeviceSpec::v100(),
            walled_duct(16, 4, 6),
            MrScheme::projective(),
            0.8,
        );
        mr.set_obs(obs.clone());
        let g = obs
            .metrics
            .gauge("mr3d_lane_redundancy", &[("pattern", "mr3d")])
            .expect("redundancy gauge missing");
        let (wx, wy) = mr.config();
        assert_eq!(g, lane_redundancy(wx, wy));
    }
}
