//! The two regularized collision kernels used by the moment representation.

use gpu_sim::efficiency::Pattern;
use lbm_core::collision::{collide_and_map_projective, collide_and_map_recursive};
use lbm_lattice::gram::HigherBasis;
use lbm_lattice::moments::Moments;
use lbm_lattice::Lattice;

/// Collision scheme of a moment-representation simulation: projective
/// regularization (the paper's **MR-P**) or recursive regularization
/// (**MR-R**, carrying the lattice's orthogonalized higher-order basis).
#[derive(Clone)]
pub enum MrScheme {
    Projective,
    Recursive(HigherBasis),
}

impl MrScheme {
    /// Projective regularization (eqs. 8–11).
    pub fn projective() -> Self {
        MrScheme::Projective
    }

    /// Recursive regularization (eqs. 12–14) for lattice `L`.
    pub fn recursive<L: Lattice>() -> Self {
        assert!(
            L::supports_recursive(),
            "{} has no recursive-regularization tables",
            L::NAME
        );
        MrScheme::Recursive(HigherBasis::new::<L>())
    }

    /// Collide a node's pre-collision moments and reconstruct the
    /// post-collision distribution — the in-cache step of Algorithm 2
    /// (lines 24–33).
    #[inline(always)]
    pub fn collide_and_map<L: Lattice>(&self, m: &Moments, tau: f64, out: &mut [f64]) {
        match self {
            MrScheme::Projective => collide_and_map_projective::<L>(m, tau, out),
            MrScheme::Recursive(basis) => collide_and_map_recursive::<L>(m, tau, basis, out),
        }
    }

    /// The performance-model pattern class.
    pub fn pattern(&self) -> Pattern {
        match self {
            MrScheme::Projective => Pattern::MomentProjective,
            MrScheme::Recursive(_) => Pattern::MomentRecursive,
        }
    }

    /// The performance-model pattern class for a given storage discipline:
    /// parity-twist (single-lattice) runs report as [`Pattern::MomentTwist`]
    /// regardless of collision operator — the twist changes residency, not
    /// arithmetic, and MR-T inherits MR-P's bandwidth calibration through
    /// `Pattern::calibration_class`.
    pub fn pattern_for(&self, twist: bool) -> Pattern {
        if twist {
            Pattern::MomentTwist
        } else {
            self.pattern()
        }
    }

    /// Report label ("MR-P" / "MR-R").
    pub fn label(&self) -> &'static str {
        self.pattern().label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbm_lattice::equilibrium::equilibrium;
    use lbm_lattice::D2Q9;

    #[test]
    fn labels_and_patterns() {
        assert_eq!(MrScheme::projective().label(), "MR-P");
        assert_eq!(MrScheme::recursive::<D2Q9>().label(), "MR-R");
    }

    /// Both schemes agree with the lbm-core operators (shared code path).
    #[test]
    fn matches_core_operators() {
        use lbm_core::collision::{Collision, Projective, Recursive};
        let mut f = vec![0.0; D2Q9::Q];
        equilibrium::<D2Q9>(1.01, [0.03, -0.05, 0.0], &mut f);
        for (i, v) in f.iter_mut().enumerate() {
            *v *= 1.0 + 0.02 * (i as f64).sin();
        }
        let m = Moments::from_f::<D2Q9>(&f);
        let tau = 0.73;

        let mut a = vec![0.0; 9];
        MrScheme::projective().collide_and_map::<D2Q9>(&m, tau, &mut a);
        let mut b = f.clone();
        Collision::<D2Q9>::collide(&Projective::new(tau), &mut b);
        for i in 0..9 {
            assert!((a[i] - b[i]).abs() < 1e-15);
        }

        let mut a = vec![0.0; 9];
        MrScheme::recursive::<D2Q9>().collide_and_map::<D2Q9>(&m, tau, &mut a);
        let mut b = f.clone();
        Collision::<D2Q9>::collide(&Recursive::new::<D2Q9>(tau), &mut b);
        for i in 0..9 {
            assert!((a[i] - b[i]).abs() < 1e-15);
        }
    }

    #[test]
    #[should_panic(expected = "no recursive-regularization")]
    fn recursive_rejects_q15() {
        let _ = MrScheme::recursive::<lbm_lattice::D3Q15>();
    }
}
