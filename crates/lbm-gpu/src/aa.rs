//! In-place AA-pattern propagation for the ST representation — one lattice
//! instead of two.
//!
//! The two-lattice drivers ([`crate::StSim`]) keep src/dst copies so a step
//! can stream without clobbering unread neighbors: `2Q·8` resident bytes
//! per node. The AA pattern (Bailey et al.; see the Wittmann et al.
//! propagation-step survey in PAPERS.md) eliminates the second lattice by
//! alternating two half-steps over a single buffer `A` of `Q·n` doubles:
//!
//! * **stream half-step** (performed when the completed-step counter is
//!   even): gather the streamed populations exactly like the pull kernel,
//!   collide, then *push* the post-collision values out — pre-applying the
//!   **next** step's streaming so they land in natural slots
//!   `A(x + c_i, i)`.
//! * **collide half-step** (counter odd): every node's inputs are already
//!   in its own natural slots; collide node-locally and store the results
//!   reversed, `A(x, OPP[i]) = f*_i`.
//!
//! With steps numbered from 1 this is the classic AA schedule — odd steps
//! pull-swap-collide-push, even steps collide in place.
//!
//! # Parity invariant
//!
//! At even completed-step counts the buffer holds the post-collision state
//! in *reversed* slots: `A_t(x, OPP[i]) = f_i(x, t)`, bitwise equal to what
//! `StSim` holds in its current lattice. At odd counts it holds the next
//! step's pre-collision inputs in *natural* slots. Every slot computation
//! routes through [`lbm_core::kernels::aa_slot`] so the convention cannot
//! drift between gather, scatter, reduction, and init.
//!
//! # Race freedom
//!
//! During the stream half-step, cell `A(v, s)` is read only by the gather
//! of node `v − c_s` (fluid case: `x − c_j = v, OPP[j] = s ⇒ x = v − c_s`)
//! and written only by the push of the *same* node (`x + c_i = v, i = s ⇒
//! x = v − c_s`); the bounce-back reads/writes of `A(x, i)` / `A(x,
//! OPP[i])` are both by node `x` itself, under the same solid-neighbor
//! condition. Every cell therefore has exclusive single-node ownership,
//! and each node gathers before it pushes — the update is race-free under
//! any block schedule, which the strict race checker verifies in the tests
//! (under the pooled executor; this is exactly what it was built for). The
//! collide half-step is trivially node-local.
//!
//! Traffic per fluid node and step is `Q` reads + `Q` writes in both
//! half-steps, so the measured B/F stays at Table 2's `2Q·8` (144 / 304)
//! while resident bytes drop from `2Q·8` to `Q·8` per node.

use crate::boundary::boundary_nodes;
use crate::st::for_each_run;
use gpu_sim::exec::{BlockCtx, Kernel, Launch, LaunchStats};
use gpu_sim::memory::Tally;
use gpu_sim::{DeviceSpec, GlobalBuffer, Gpu};
use lbm_core::boundary::WallGains;
use lbm_core::collision::Collision;
use lbm_core::geometry::{Geometry, NodeType};
use lbm_core::kernels::{aa_slot, KernelConsts, MAX_Q};
use lbm_lattice::moments::Moments;
use lbm_lattice::Lattice;
use std::marker::PhantomData;

/// Gather the streamed populations for node `idx` out of the even-state
/// buffer (post-collision values in reversed slots). Case-for-case the
/// reads are [`crate::StSim`]'s pull gather with the source slot routed
/// through the even-parity mapping: a fluid neighbor's `f_i` lives at
/// `A(x − c_i, OPP[i])`, and the bounce-back read of the node's own
/// `f_{OPP[i]}` lives at `A(x, i)`.
#[inline]
fn aa_gather<L: Lattice>(
    ctx: &mut BlockCtx,
    a: &GlobalBuffer<f64>,
    geom: &Geometry,
    gains: &WallGains,
    idx: usize,
    f_loc: &mut [f64; MAX_Q],
) {
    let n = geom.len();
    let (x, y, z) = geom.coords(idx);
    for i in 0..L::Q {
        let c = L::C[i];
        f_loc[i] = match geom.neighbor(x, y, z, [-c[0], -c[1], -c[2]]) {
            Some((px, py, pz)) => {
                let nidx = geom.idx(px, py, pz);
                match geom.node_at(nidx) {
                    t if t.is_fluid_like() => ctx.read(a, L::OPP[i] * n + nidx),
                    NodeType::Wall => ctx.read(a, i * n + idx),
                    NodeType::MovingWall(uw) => ctx.read(a, i * n + idx) + gains.gain(i, uw),
                    _ => unreachable!(),
                }
            }
            None => ctx.read(a, i * n + idx),
        };
    }
}

/// Stream half-step kernel over the x-span `[x_lo, x_hi)`: gather (pull
/// rules over reversed slots), collide, scatter (push rules into natural
/// slots). The span restriction is the multi-device building block; the
/// single-device driver launches it over the whole domain.
struct AaStreamKernel<'a, L: Lattice, C: Collision<L>> {
    a: &'a GlobalBuffer<f64>,
    geom: &'a Geometry,
    collision: &'a C,
    consts: &'a KernelConsts,
    block_size: usize,
    x_lo: usize,
    x_hi: usize,
    _l: PhantomData<L>,
}

impl<L: Lattice, C: Collision<L>> Kernel for AaStreamKernel<'_, L, C> {
    fn name(&self) -> &str {
        "aa-stream"
    }

    fn run_block(&self, ctx: &mut BlockCtx) {
        let n = self.geom.len();
        let bs = self.block_size;
        let w = self.x_hi - self.x_lo;
        let span = w * self.geom.ny * self.geom.nz;
        let base = ctx.block_id * bs;
        let node_of = |tid: usize| {
            let q = base + tid;
            if q >= span {
                return None;
            }
            let x = self.x_lo + q % w;
            let y = (q / w) % self.geom.ny;
            let z = q / (w * self.geom.ny);
            let idx = self.geom.idx(x, y, z);
            matches!(self.geom.node_at(idx), NodeType::Fluid).then_some(idx)
        };
        // Pass 1: gather + collide into scratch, staged per maximal run —
        // the same arithmetic path (and `collide_soa` chunking) as the
        // two-lattice pull kernel, so per-node values are bitwise equal.
        for_each_run(ctx, bs, node_of, |ctx, stid, sidx, len| {
            let mut f_loc = [0.0f64; MAX_Q];
            for k in 0..len {
                aa_gather::<L>(
                    ctx,
                    self.a,
                    self.geom,
                    &self.consts.gains,
                    sidx + k,
                    &mut f_loc,
                );
                if self.consts.scalar {
                    self.collision.collide(&mut f_loc[..L::Q]);
                }
                let scratch = ctx.scratch();
                for i in 0..L::Q {
                    scratch[i * bs + stid + k] = f_loc[i];
                }
            }
            if !self.consts.scalar {
                self.collision.collide_soa(ctx.scratch(), bs, stid, len);
            }
        });
        // Pass 2: scatter element-wise with the push rules (pre-applies the
        // next step's streaming). Each node's gather strictly precedes its
        // push, and cell ownership is exclusive (module docs), so the
        // in-place overwrite is race-free.
        let mut f_loc = [0.0f64; MAX_Q];
        for tid in 0..bs {
            let Some(idx) = node_of(tid) else {
                continue;
            };
            let (x, y, z) = self.geom.coords(idx);
            let scratch = ctx.scratch();
            for i in 0..L::Q {
                f_loc[i] = scratch[i * bs + tid];
            }
            for i in 0..L::Q {
                let c = L::C[i];
                match self.geom.neighbor(x, y, z, c) {
                    Some((dx, dy, dz)) => {
                        let didx = self.geom.idx(dx, dy, dz);
                        match self.geom.node_at(didx) {
                            t if t.is_fluid_like() => ctx.write(self.a, i * n + didx, f_loc[i]),
                            NodeType::Wall => ctx.write(self.a, L::OPP[i] * n + idx, f_loc[i]),
                            NodeType::MovingWall(uw) => ctx.write(
                                self.a,
                                L::OPP[i] * n + idx,
                                f_loc[i] + self.consts.gains.gain(L::OPP[i], uw),
                            ),
                            _ => unreachable!(),
                        }
                    }
                    None => ctx.write(self.a, L::OPP[i] * n + idx, f_loc[i]),
                }
            }
        }
    }
}

/// Collide half-step kernel over the x-span `[x_lo, x_hi)`: read the `Q`
/// natural slots (already streamed by the previous half-step's push),
/// collide, write back reversed. Node-local by construction.
struct AaCollideKernel<'a, L: Lattice, C: Collision<L>> {
    a: &'a GlobalBuffer<f64>,
    geom: &'a Geometry,
    collision: &'a C,
    consts: &'a KernelConsts,
    block_size: usize,
    x_lo: usize,
    x_hi: usize,
    _l: PhantomData<L>,
}

impl<L: Lattice, C: Collision<L>> Kernel for AaCollideKernel<'_, L, C> {
    fn name(&self) -> &str {
        "aa-collide"
    }

    fn run_block(&self, ctx: &mut BlockCtx) {
        let n = self.geom.len();
        let bs = self.block_size;
        let w = self.x_hi - self.x_lo;
        let span = w * self.geom.ny * self.geom.nz;
        let base = ctx.block_id * bs;
        let node_of = |tid: usize| {
            let q = base + tid;
            if q >= span {
                return None;
            }
            let x = self.x_lo + q % w;
            let y = (q / w) % self.geom.ny;
            let z = q / (w * self.geom.ny);
            let idx = self.geom.idx(x, y, z);
            matches!(self.geom.node_at(idx), NodeType::Fluid).then_some(idx)
        };
        for_each_run(ctx, bs, node_of, |ctx, stid, sidx, len| {
            if self.consts.scalar {
                let mut f_loc = [0.0f64; MAX_Q];
                for k in 0..len {
                    let idx = sidx + k;
                    for i in 0..L::Q {
                        f_loc[i] = ctx.read(self.a, i * n + idx);
                    }
                    self.collision.collide(&mut f_loc[..L::Q]);
                    let scratch = ctx.scratch();
                    for i in 0..L::Q {
                        scratch[i * bs + stid + k] = f_loc[i];
                    }
                }
            } else {
                for i in 0..L::Q {
                    ctx.read_span_to_scratch(self.a, i * n + sidx, i * bs + stid, len);
                }
                self.collision.collide_soa(ctx.scratch(), bs, stid, len);
            }
            // All Q rows of the run were read above, so the reversed-slot
            // flush only overwrites cells this run's own nodes already
            // consumed.
            for i in 0..L::Q {
                ctx.write_span_from_scratch(self.a, L::OPP[i] * n + sidx, i * bs + stid, len);
            }
        });
    }
}

/// Launch the AA stream half-step (gather + collide + push) restricted to
/// the x-span `[x_lo, x_hi)`. Per-node arithmetic is identical to the full
/// launch, so a union of span launches covering the domain is bitwise
/// equal to one full launch — the multi-device building block.
#[allow(clippy::too_many_arguments)]
pub fn launch_aa_stream_span<L: Lattice, C: Collision<L>>(
    gpu: &Gpu,
    a: &GlobalBuffer<f64>,
    geom: &Geometry,
    collision: &C,
    consts: &KernelConsts,
    block_size: usize,
    x_lo: usize,
    x_hi: usize,
) -> LaunchStats {
    assert!(x_lo < x_hi && x_hi <= geom.nx, "bad span {x_lo}..{x_hi}");
    let span = (x_hi - x_lo) * geom.ny * geom.nz;
    gpu.launch(
        &Launch {
            blocks: span.div_ceil(block_size),
            threads_per_block: block_size,
            shared_doubles: 0,
            scratch_doubles: L::Q * block_size,
        },
        &AaStreamKernel::<L, C> {
            a,
            geom,
            collision,
            consts,
            block_size,
            x_lo,
            x_hi,
            _l: PhantomData,
        },
    )
}

/// Launch the AA collide half-step (node-local collide, reversed-slot
/// store) restricted to the x-span `[x_lo, x_hi)`.
#[allow(clippy::too_many_arguments)]
pub fn launch_aa_collide_span<L: Lattice, C: Collision<L>>(
    gpu: &Gpu,
    a: &GlobalBuffer<f64>,
    geom: &Geometry,
    collision: &C,
    consts: &KernelConsts,
    block_size: usize,
    x_lo: usize,
    x_hi: usize,
) -> LaunchStats {
    assert!(x_lo < x_hi && x_hi <= geom.nx, "bad span {x_lo}..{x_hi}");
    let span = (x_hi - x_lo) * geom.ny * geom.nz;
    gpu.launch(
        &Launch {
            blocks: span.div_ceil(block_size),
            threads_per_block: block_size,
            shared_doubles: 0,
            scratch_doubles: L::Q * block_size,
        },
        &AaCollideKernel::<L, C> {
            a,
            geom,
            collision,
            consts,
            block_size,
            x_lo,
            x_hi,
            _l: PhantomData,
        },
    )
}

/// Driver for an in-place AA-pattern ST simulation: one `Q·n` lattice,
/// bitwise equal to [`crate::StSim`] at every even step count.
pub struct AaStSim<L: Lattice, C: Collision<L>> {
    gpu: Gpu,
    geom: Geometry,
    a: GlobalBuffer<f64>,
    collision: C,
    consts: KernelConsts,
    block_size: usize,
    steps: u64,
    accum: Tally,
    profiler: Option<std::sync::Arc<gpu_sim::profiler::Profiler>>,
    obs: Option<std::sync::Arc<obs::Obs>>,
    monitor: Option<obs::PhysicsMonitor>,
    _l: PhantomData<L>,
}

impl<L: Lattice, C: Collision<L>> AaStSim<L, C> {
    /// Build an AA simulation on `device` over `geom`, initialized to
    /// equilibrium at rest. Like the push-scheme ablation, the AA scatter
    /// has no inlet/outlet support — the scheme pre-streams into neighbors
    /// before the boundary kernel could rebuild them — so geometries with
    /// inlet/outlet nodes are rejected.
    pub fn new(device: DeviceSpec, geom: Geometry, collision: C) -> Self {
        if L::D == 2 {
            assert_eq!(geom.nz, 1, "2D lattice on a 3D domain");
        }
        assert!(
            boundary_nodes(&geom).is_empty(),
            "AA-pattern streaming does not support inlet/outlet boundaries"
        );
        let n = geom.len();
        let consts = KernelConsts::new::<L>(collision.tau());
        let mut sim = AaStSim {
            gpu: Gpu::new(device),
            geom,
            a: GlobalBuffer::new(L::Q * n).with_touch_tracking(),
            collision,
            consts,
            block_size: 256,
            steps: 0,
            accum: Tally::default(),
            profiler: None,
            obs: None,
            monitor: None,
            _l: PhantomData,
        };
        sim.init_with(|_, _, _| (1.0, [0.0; 3]));
        sim
    }

    /// Limit the CPU worker threads backing the substrate.
    pub fn with_cpu_threads(mut self, n: usize) -> Self {
        self.gpu = self.gpu.with_cpu_threads(n);
        self
    }

    /// Override the minimum launch size dispatched to the worker pool;
    /// `0` forces pooling for every multi-block launch.
    pub fn with_parallel_threshold(mut self, items: usize) -> Self {
        self.gpu = self.gpu.with_parallel_threshold(items);
        self
    }

    /// Record every kernel launch into a shared profiler.
    pub fn with_profiler(mut self, p: std::sync::Arc<gpu_sim::profiler::Profiler>) -> Self {
        self.profiler = Some(p);
        self
    }

    /// Attach an observability hub (step spans, kernel spans, launch
    /// metrics).
    pub fn with_obs(mut self, obs: std::sync::Arc<obs::Obs>) -> Self {
        self.set_obs(obs);
        self
    }

    /// In-place [`AaStSim::with_obs`] (the `Simulation` trait surface).
    pub fn set_obs(&mut self, obs: std::sync::Arc<obs::Obs>) {
        self.gpu.set_obs(obs.clone());
        self.obs = Some(obs);
    }

    /// Attach (or clear) the fleet trace context.
    pub fn set_trace_ctx(&mut self, ctx: Option<obs::TraceCtx>) {
        self.gpu.set_trace_ctx(ctx);
    }

    /// Attach a physics monitor sampling the macroscopic fields every
    /// `cfg.cadence` steps.
    pub fn with_monitor(mut self, cfg: obs::MonitorConfig) -> Self {
        self.monitor = Some(obs::PhysicsMonitor::new(cfg));
        self
    }

    /// The attached physics monitor, if any.
    pub fn monitor(&self) -> Option<&obs::PhysicsMonitor> {
        self.monitor.as_ref()
    }

    /// Mutable access to the physics monitor (recovery rollback).
    pub fn monitor_mut(&mut self) -> Option<&mut obs::PhysicsMonitor> {
        self.monitor.as_mut()
    }

    /// Set the thread-block size of the half-step kernels.
    pub fn with_block_size(mut self, bs: usize) -> Self {
        assert!(bs >= 1);
        self.block_size = bs;
        self
    }

    /// Run the original per-node scalar kernels instead of the vectorized
    /// SoA chunks (bitwise-identical; the equivalence oracle).
    pub fn with_scalar_kernels(mut self) -> Self {
        self.consts.scalar = true;
        self
    }

    /// Enable strict race checking on the single lattice: any cross-block
    /// overlap or stale read inside a launch panics. The in-place update's
    /// exclusive cell ownership is exactly what this verifies.
    pub fn with_racecheck_strict(mut self) -> Self {
        let a = std::mem::replace(&mut self.a, GlobalBuffer::new(1));
        self.a = a.with_racecheck_strict();
        self
    }

    /// Attach a deterministic fault plan to the device and the lattice.
    pub fn with_fault_plan(mut self, plan: std::sync::Arc<gpu_sim::FaultPlan>) -> Self {
        self.gpu.set_fault_plan(plan.clone());
        self.a.set_fault_plan(plan);
        self
    }

    /// Initialize all nodes to the operator-consistent equilibrium of a
    /// macroscopic field, stored per the even-parity invariant (reversed
    /// slots), and reset the step/traffic counters.
    pub fn init_with(&mut self, field: impl Fn(usize, usize, usize) -> (f64, [f64; 3])) {
        let n = self.geom.len();
        let mut feq = [0.0f64; MAX_Q];
        for idx in 0..n {
            let (x, y, z) = self.geom.coords(idx);
            let (rho, u) = field(x, y, z);
            let m = Moments {
                rho,
                u,
                pi: Moments::pi_eq(rho, u, L::D),
            };
            self.collision.reconstruct(&m, &mut feq[..L::Q]);
            for i in 0..L::Q {
                self.a.set(aa_slot::<L>(0, i) * n + idx, feq[i]);
            }
        }
        self.steps = 0;
        self.accum = Tally::default();
    }

    /// Advance one timestep: the stream half-step at even completed-step
    /// counts, the in-place collide at odd ones.
    pub fn step(&mut self) {
        let obs = self.obs.clone();
        let _step_span = obs.as_ref().map(|o| {
            let mut args = vec![("t", self.steps.to_string())];
            if let Some(ctx) = self.gpu.trace_ctx() {
                ctx.append_args(&mut args);
            }
            o.tracer.span_args("driver", "step", &args)
        });
        let stats = if self.steps.is_multiple_of(2) {
            launch_aa_stream_span::<L, C>(
                &self.gpu,
                &self.a,
                &self.geom,
                &self.collision,
                &self.consts,
                self.block_size,
                0,
                self.geom.nx,
            )
        } else {
            launch_aa_collide_span::<L, C>(
                &self.gpu,
                &self.a,
                &self.geom,
                &self.collision,
                &self.consts,
                self.block_size,
                0,
                self.geom.nx,
            )
        };
        self.accum.merge(&stats.tally);
        if let Some(p) = &self.profiler {
            p.record(&stats, self.geom.fluid_count() as u64);
        }
        self.steps += 1;
        self.sample_monitor();
    }

    fn sample_monitor(&mut self) {
        if !self.monitor.as_ref().is_some_and(|m| m.due(self.steps)) {
            return;
        }
        let (rho, u) = self.macro_fields();
        let s = self.monitor.as_mut().unwrap().observe(self.steps, &rho, &u);
        if let Some(o) = &self.obs {
            o.metrics
                .gauge_set("monitor_mass", &[("pattern", "aa-st")], s.mass);
            o.metrics
                .gauge_set("monitor_max_u", &[("pattern", "aa-st")], s.max_u);
            if s.nonfinite > 0 {
                o.tracer.instant(
                    "monitor",
                    "nonfinite",
                    &[
                        ("step", s.step.to_string()),
                        ("count", s.nonfinite.to_string()),
                    ],
                );
            }
        }
    }

    /// Advance `steps` timesteps, then force a final monitor sample.
    pub fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
        self.finish_monitor();
    }

    /// Force a final monitor sample at the current step.
    pub fn finish_monitor(&mut self) {
        if self.monitor.is_none() {
            return;
        }
        let (rho, u) = self.macro_fields();
        let s = self.monitor.as_mut().unwrap().finish(self.steps, &rho, &u);
        if let (Some(s), Some(o)) = (s, &self.obs) {
            o.metrics
                .gauge_set("monitor_mass", &[("pattern", "aa-st")], s.mass);
            o.metrics
                .gauge_set("monitor_max_u", &[("pattern", "aa-st")], s.max_u);
            o.tracer
                .instant("monitor", "flush", &[("step", s.step.to_string())]);
        }
    }

    /// Completed timesteps.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Domain geometry.
    pub fn geom(&self) -> &Geometry {
        &self.geom
    }

    /// Aggregate traffic over all steps so far.
    pub fn traffic(&self) -> Tally {
        self.accum
    }

    /// Measured DRAM bytes per fluid lattice update (Table 2's B/F).
    pub fn measured_bpf(&self) -> f64 {
        let updates = self.geom.fluid_count() as u64 * self.steps;
        if updates == 0 {
            return 0.0;
        }
        self.accum.dram_bytes() as f64 / updates as f64
    }

    /// Device-memory footprint: exactly one lattice, `Q·8` bytes per node —
    /// half of [`crate::StSim`].
    pub fn footprint_bytes(&self) -> usize {
        self.a.size_bytes()
    }

    /// Distribution at a node, un-permuted to natural direction order
    /// regardless of the current parity.
    pub fn f_at(&self, x: usize, y: usize, z: usize) -> Vec<f64> {
        let n = self.geom.len();
        let idx = self.geom.idx(x, y, z);
        (0..L::Q)
            .map(|i| self.a.get(aa_slot::<L>(self.steps, i) * n + idx))
            .collect()
    }

    /// Moments at a node.
    pub fn moments_at(&self, x: usize, y: usize, z: usize) -> Moments {
        Moments::from_f::<L>(&self.f_at(x, y, z))
    }

    /// Density and velocity fields in one pass (solid nodes report zero).
    /// At even parity the slot un-permutation makes the per-node sums
    /// bitwise identical to [`crate::StSim::macro_fields`]; at odd parity
    /// the buffer holds the *streamed* inputs of the next step, so the
    /// fields are the (deterministic, conservative) half-cycle state —
    /// comparable to the two-lattice driver only at even counts.
    pub fn macro_fields(&self) -> (Vec<f64>, Vec<[f64; 3]>) {
        let n = self.geom.len();
        let mut rho_out = vec![0.0; n];
        let mut u_out = vec![[0.0; 3]; n];
        for idx in 0..n {
            if !self.geom.node_at(idx).is_fluid_like() {
                continue;
            }
            let mut rho = 0.0;
            let mut j = [0.0f64; 3];
            for i in 0..L::Q {
                let fi = self.a.get(aa_slot::<L>(self.steps, i) * n + idx);
                let c = L::cf(i);
                rho += fi;
                j[0] += c[0] * fi;
                j[1] += c[1] * fi;
                j[2] += c[2] * fi;
            }
            let inv_rho = 1.0 / rho;
            rho_out[idx] = rho;
            u_out[idx] = [j[0] * inv_rho, j[1] * inv_rho, j[2] * inv_rho];
        }
        (rho_out, u_out)
    }

    /// Velocity field (solid nodes report zero).
    pub fn velocity_field(&self) -> Vec<[f64; 3]> {
        self.macro_fields().1
    }

    /// Density field (solid nodes report zero).
    pub fn density_field(&self) -> Vec<f64> {
        self.macro_fields().0
    }

    /// FNV-1a fingerprint of the macroscopic fields (bitwise-sensitive).
    pub fn field_checksum(&self) -> u64 {
        let (rho, u) = self.macro_fields();
        lbm_core::io::field_checksum(&rho, &u)
    }

    /// Serialize the full solver state. The flavor tag carries the step
    /// parity (`"aa-st+even"` / `"aa-st+odd"`), so a restore can only land
    /// on the half of the AA cycle the snapshot was taken at.
    pub fn checkpoint(&self) -> Vec<u8> {
        let n = self.geom.len();
        let flavor = lbm_core::io::parity_flavor("aa-st", self.steps);
        let mut w = lbm_core::io::CheckpointWriter::new(&flavor);
        w.put_u64(self.geom.nx as u64)
            .put_u64(self.geom.ny as u64)
            .put_u64(self.geom.nz as u64)
            .put_u64(L::Q as u64)
            .put_u64(self.steps)
            .put_u64(self.accum.reads)
            .put_u64(self.accum.writes)
            .put_u64(self.accum.bytes_read)
            .put_u64(self.accum.bytes_written)
            .put_u64(self.accum.dram_bytes_read)
            .put_u64(self.accum.l2_read_hits)
            .put_f64s(&self.a.snapshot()[..L::Q * n]);
        w.finish()
    }

    /// Restore an [`AaStSim::checkpoint`] snapshot taken on an identically
    /// configured simulation. The parity baked into the flavor tag is
    /// cross-checked against the stored step counter, so a snapshot whose
    /// framing and payload disagree about the half-cycle is rejected.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), lbm_core::io::CheckpointError> {
        use lbm_core::io::{CheckpointError, CheckpointReader};
        let (mut r, which) = CheckpointReader::open_any(bytes, &["aa-st+even", "aa-st+odd"])?;
        r.expect_u64(self.geom.nx as u64, "nx")?;
        r.expect_u64(self.geom.ny as u64, "ny")?;
        r.expect_u64(self.geom.nz as u64, "nz")?;
        r.expect_u64(L::Q as u64, "Q")?;
        let steps = r.take_u64()?;
        if steps % 2 != which as u64 {
            return Err(CheckpointError::Mismatch(format!(
                "flavor parity ({}) disagrees with stored step counter {steps}",
                if which == 0 { "even" } else { "odd" }
            )));
        }
        let accum = Tally {
            reads: r.take_u64()?,
            writes: r.take_u64()?,
            bytes_read: r.take_u64()?,
            bytes_written: r.take_u64()?,
            dram_bytes_read: r.take_u64()?,
            l2_read_hits: r.take_u64()?,
        };
        let n = self.geom.len();
        let a = r.take_f64s(L::Q * n)?;
        for (i, v) in a.iter().enumerate() {
            self.a.set(i, *v);
        }
        self.steps = steps;
        self.accum = accum;
        if let Some(m) = self.monitor.as_mut() {
            m.rollback_to(self.steps);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StSim;
    use lbm_core::collision::{Bgk, Projective};
    use lbm_lattice::{D2Q9, D3Q19};

    fn shear_init(x: usize, y: usize, z: usize) -> (f64, [f64; 3]) {
        (
            1.0 + 0.01 * ((x + 2 * y + z) as f64 * 0.3).sin(),
            [
                0.02 * ((y + z) as f64 * 0.6).sin(),
                0.01 * (x as f64 * 0.4).cos(),
                0.0,
            ],
        )
    }

    /// A 2D geometry with a moving lid so the AA bounce-back gain paths are
    /// exercised against the two-lattice driver.
    fn lid_geom(nx: usize, ny: usize) -> Geometry {
        let mut g = Geometry::walls_y_periodic_x(nx, ny);
        for x in 0..nx {
            g.set(x, ny - 1, 0, NodeType::MovingWall([0.05, 0.0, 0.0]));
        }
        g
    }

    /// The correctness contract: AA is bitwise equal to the two-lattice ST
    /// driver at *every even* step count, on both device models, including
    /// moving-wall bounce-back.
    #[test]
    fn aa_matches_st_bitwise_at_even_steps_2d() {
        for dev in [DeviceSpec::v100(), DeviceSpec::mi100()] {
            let geom = lid_geom(20, 10);
            let mut aa: AaStSim<D2Q9, _> =
                AaStSim::new(dev.clone(), geom.clone(), Bgk::new(0.8)).with_cpu_threads(2);
            aa.init_with(shear_init);
            let mut st: StSim<D2Q9, _> = StSim::new(dev, geom, Bgk::new(0.8)).with_cpu_threads(2);
            st.init_with(shear_init);
            assert_eq!(aa.field_checksum(), st.field_checksum(), "init state");
            for step in 1..=8u64 {
                aa.step();
                st.step();
                if step % 2 == 0 {
                    assert_eq!(
                        aa.field_checksum(),
                        st.field_checksum(),
                        "divergence at even step {step}"
                    );
                }
            }
        }
    }

    /// Same contract in 3D (walled duct, periodic x), with the projective
    /// regularized operator to cover the non-BGK collide path.
    #[test]
    fn aa_matches_st_bitwise_at_even_steps_3d() {
        for dev in [DeviceSpec::v100(), DeviceSpec::mi100()] {
            let mut geom = Geometry::new(10, 6, 6, [true, false, false]);
            for z in 0..6 {
                for y in 0..6 {
                    for x in 0..10 {
                        if y == 0 || y == 5 || z == 0 || z == 5 {
                            geom.set(x, y, z, NodeType::Wall);
                        }
                    }
                }
            }
            let mut aa: AaStSim<D3Q19, _> =
                AaStSim::new(dev.clone(), geom.clone(), Projective::new(0.7)).with_cpu_threads(2);
            aa.init_with(shear_init);
            let mut st: StSim<D3Q19, _> =
                StSim::new(dev, geom, Projective::new(0.7)).with_cpu_threads(2);
            st.init_with(shear_init);
            for _ in 0..2 {
                aa.step();
                aa.step();
                st.step();
                st.step();
                assert_eq!(aa.field_checksum(), st.field_checksum());
            }
        }
    }

    /// The race checker's reason to exist: the in-place swap must be
    /// race-free under the pooled executor (forced pooling, small blocks,
    /// several workers), in strict mode, across both half-steps.
    #[test]
    fn aa_strict_racecheck_under_pooled_executor() {
        let mut sim: AaStSim<D2Q9, _> =
            AaStSim::new(DeviceSpec::v100(), lid_geom(20, 10), Bgk::new(0.8))
                .with_racecheck_strict()
                .with_cpu_threads(3)
                .with_parallel_threshold(0)
                .with_block_size(32);
        sim.init_with(shear_init);
        sim.run(4);
        assert!(sim.field_checksum() != 0);
    }

    /// Strict race check in 3D too (different neighbor topology).
    #[test]
    fn aa_strict_racecheck_3d() {
        let mut sim: AaStSim<D3Q19, _> = AaStSim::new(
            DeviceSpec::v100(),
            Geometry::periodic_3d(8, 6, 6),
            Bgk::new(0.9),
        )
        .with_racecheck_strict()
        .with_cpu_threads(3)
        .with_parallel_threshold(0)
        .with_block_size(32);
        sim.run(4);
        assert!(sim.field_checksum() != 0);
    }

    /// Resident bytes are exactly one lattice — `Q·8` per node, half of the
    /// two-lattice driver, byte-exact.
    #[test]
    fn footprint_is_single_lattice() {
        let geom = Geometry::periodic_2d(10, 10);
        let aa: AaStSim<D2Q9, _> = AaStSim::new(DeviceSpec::v100(), geom.clone(), Bgk::new(0.8));
        let st: StSim<D2Q9, _> = StSim::new(DeviceSpec::v100(), geom, Bgk::new(0.8));
        assert_eq!(aa.footprint_bytes(), 9 * 100 * 8);
        assert_eq!(2 * aa.footprint_bytes(), st.footprint_bytes());
    }

    /// Measured B/F stays at Table 2's 2Q·8 on a periodic box — in-place
    /// storage halves residency, not traffic.
    #[test]
    fn measured_bpf_matches_table2_2d() {
        let mut sim: AaStSim<D2Q9, _> = AaStSim::new(
            DeviceSpec::v100(),
            Geometry::periodic_2d(32, 16),
            Bgk::new(0.9),
        )
        .with_cpu_threads(2);
        sim.run(4);
        let bpf = sim.measured_bpf();
        assert!((bpf - 144.0).abs() < 1e-9, "B/F = {bpf}");
    }

    #[test]
    fn measured_bpf_matches_table2_3d() {
        let mut sim: AaStSim<D3Q19, _> = AaStSim::new(
            DeviceSpec::v100(),
            Geometry::periodic_3d(12, 8, 8),
            Bgk::new(0.9),
        )
        .with_cpu_threads(2);
        sim.run(2);
        let bpf = sim.measured_bpf();
        assert!((bpf - 304.0).abs() < 1e-9, "B/F = {bpf}");
    }

    /// Scheduling must be invisible: 1, 3, and 8 worker threads produce
    /// bitwise-identical fields and identical tallies, at odd and even
    /// parity alike.
    #[test]
    fn executor_determinism_across_thread_counts() {
        let run = |threads: usize, steps: usize| {
            let mut sim: AaStSim<D2Q9, _> =
                AaStSim::new(DeviceSpec::v100(), lid_geom(20, 11), Bgk::new(0.8))
                    .with_cpu_threads(threads)
                    .with_parallel_threshold(0)
                    .with_block_size(32);
            sim.init_with(shear_init);
            sim.run(steps);
            (sim.field_checksum(), sim.traffic())
        };
        for steps in [7, 8] {
            let base = run(1, steps);
            for threads in [3, 8] {
                assert_eq!(base, run(threads, steps), "diverges at {threads} threads");
            }
        }
    }

    /// Scalar and vectorized kernels are bitwise-identical on both
    /// half-steps.
    #[test]
    fn scalar_path_matches_vectorized() {
        for steps in [3usize, 4] {
            let mk = |scalar: bool| {
                let mut sim: AaStSim<D2Q9, _> =
                    AaStSim::new(DeviceSpec::v100(), lid_geom(16, 9), Bgk::new(0.8))
                        .with_cpu_threads(2);
                if scalar {
                    sim = sim.with_scalar_kernels();
                }
                sim.init_with(shear_init);
                sim.run(steps);
                sim.field_checksum()
            };
            assert_eq!(mk(false), mk(true), "scalar/vector divergence at {steps}");
        }
    }

    /// Checkpoint/restore round-trips at both parities; the odd-parity
    /// snapshot carries the `+odd` flavor and restores onto the correct
    /// half-cycle (resumed trajectory bitwise equal to uninterrupted).
    #[test]
    fn checkpoint_round_trips_at_both_parities() {
        for cut in [3usize, 4] {
            let mut a: AaStSim<D2Q9, _> =
                AaStSim::new(DeviceSpec::v100(), lid_geom(16, 9), Bgk::new(0.8))
                    .with_cpu_threads(2);
            a.init_with(shear_init);
            a.run(cut);
            let blob = a.checkpoint();
            a.run(8 - cut);

            let mut b: AaStSim<D2Q9, _> =
                AaStSim::new(DeviceSpec::v100(), lid_geom(16, 9), Bgk::new(0.8))
                    .with_cpu_threads(2);
            b.restore(&blob).unwrap();
            assert_eq!(b.steps(), cut as u64);
            b.run(8 - cut);
            assert_eq!(a.field_checksum(), b.field_checksum(), "cut at {cut}");
        }
    }

    /// An ST snapshot (or any foreign flavor) is rejected, and a tampered
    /// parity tag is caught by the flavor/counter cross-check.
    #[test]
    fn restore_rejects_foreign_and_parity_mismatched_snapshots() {
        use lbm_core::io::{CheckpointError, CheckpointWriter};
        let geom = Geometry::walls_y_periodic_x(16, 9);
        let mut st: StSim<D2Q9, _> =
            StSim::new(DeviceSpec::v100(), geom.clone(), Bgk::new(0.8)).with_cpu_threads(1);
        st.run(2);
        let mut aa: AaStSim<D2Q9, _> = AaStSim::new(DeviceSpec::v100(), geom, Bgk::new(0.8));
        assert!(matches!(
            aa.restore(&st.checkpoint()),
            Err(CheckpointError::WrongFlavor { .. })
        ));
        // Forge an even-flavored blob whose stored counter is odd.
        let n = aa.geom().len();
        let mut w = CheckpointWriter::new("aa-st+even");
        w.put_u64(16).put_u64(9).put_u64(1).put_u64(9).put_u64(3);
        for _ in 0..6 {
            w.put_u64(0);
        }
        w.put_f64s(&vec![0.1; 9 * n]);
        assert!(matches!(
            aa.restore(&w.finish()),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    /// Odd-parity fields are the conservative half-cycle state: global mass
    /// equals the even-state mass on a periodic box.
    #[test]
    fn odd_parity_state_conserves_mass() {
        let mut sim: AaStSim<D2Q9, _> = AaStSim::new(
            DeviceSpec::v100(),
            Geometry::periodic_2d(16, 8),
            Bgk::new(0.9),
        )
        .with_cpu_threads(2);
        sim.init_with(shear_init);
        let mass = |s: &AaStSim<D2Q9, Bgk>| s.density_field().iter().sum::<f64>();
        let m0 = mass(&sim);
        for _ in 0..5 {
            sim.step();
            assert!(
                (mass(&sim) - m0).abs() < 1e-10,
                "mass drift at {}",
                sim.steps()
            );
        }
    }

    /// macro_fields matches the per-node accessors at both parities.
    #[test]
    fn macro_fields_matches_per_node_accessors() {
        let mut sim: AaStSim<D2Q9, _> =
            AaStSim::new(DeviceSpec::v100(), lid_geom(16, 10), Bgk::new(0.8)).with_cpu_threads(2);
        sim.init_with(shear_init);
        for _ in 0..3 {
            sim.step();
            let (rho, u) = sim.macro_fields();
            for idx in 0..sim.geom().len() {
                let (x, y, z) = sim.geom().coords(idx);
                if sim.geom().node_at(idx).is_fluid_like() {
                    let m = sim.moments_at(x, y, z);
                    assert_eq!(rho[idx], m.rho);
                    assert_eq!(u[idx], m.u);
                } else {
                    assert_eq!(rho[idx], 0.0);
                }
            }
        }
    }

    /// Inlet/outlet geometries are rejected up front.
    #[test]
    #[should_panic(expected = "does not support inlet/outlet")]
    fn rejects_inlet_outlet_geometries() {
        let geom = Geometry::channel_2d(16, 8, 0.03);
        let _ = AaStSim::<D2Q9, _>::new(DeviceSpec::v100(), geom, Bgk::new(0.8));
    }
}
