//! Per-tenant admission control.
//!
//! Two independent limits, both charged at submit time and released when a
//! job reaches a terminal state:
//!
//! * **in-flight jobs** — everything submitted and not yet
//!   completed/canceled/failed (queued, running, and evicted jobs all
//!   count: an evicted job still owns its checkpoint bytes);
//! * **resident lattice nodes** — the sum of `Scenario::nodes()` over the
//!   tenant's in-flight jobs, a proxy for the device memory the tenant can
//!   pin at once.
//!
//! Rejection is synchronous ([`SubmitError::QuotaExceeded`]) rather than
//! queued-but-deprioritized: a tenant at its limit gets immediate
//! backpressure instead of a silently growing backlog.

use crate::job::SubmitError;
use std::collections::HashMap;

/// Limits for one tenant. `usize::MAX` (the default) means unlimited.
#[derive(Clone, Copy, Debug)]
pub struct TenantQuota {
    /// Max jobs submitted and not yet terminal.
    pub max_in_flight: usize,
    /// Max total lattice nodes across in-flight jobs.
    pub max_resident_nodes: usize,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            max_in_flight: usize::MAX,
            max_resident_nodes: usize::MAX,
        }
    }
}

/// What one tenant currently holds.
#[derive(Clone, Copy, Debug, Default)]
pub struct TenantUsage {
    pub in_flight: usize,
    pub resident_nodes: usize,
}

/// Admission ledger: per-tenant usage checked against per-tenant quotas.
#[derive(Default)]
pub struct QuotaLedger {
    quotas: HashMap<String, TenantQuota>,
    usage: HashMap<String, TenantUsage>,
}

impl QuotaLedger {
    pub fn new(quotas: HashMap<String, TenantQuota>) -> Self {
        QuotaLedger {
            quotas,
            usage: HashMap::new(),
        }
    }

    /// Charge a submission, or explain why it cannot be admitted. On `Ok`
    /// the usage is already recorded.
    pub fn try_charge(&mut self, tenant: &str, nodes: usize) -> Result<(), SubmitError> {
        let quota = self.quotas.get(tenant).copied().unwrap_or_default();
        let usage = self.usage.entry(tenant.to_string()).or_default();
        if usage.in_flight + 1 > quota.max_in_flight {
            return Err(SubmitError::QuotaExceeded {
                tenant: tenant.to_string(),
                reason: format!(
                    "{} jobs in flight (limit {})",
                    usage.in_flight, quota.max_in_flight
                ),
            });
        }
        if usage.resident_nodes + nodes > quota.max_resident_nodes {
            return Err(SubmitError::QuotaExceeded {
                tenant: tenant.to_string(),
                reason: format!(
                    "{} + {} resident nodes would exceed limit {}",
                    usage.resident_nodes, nodes, quota.max_resident_nodes
                ),
            });
        }
        usage.in_flight += 1;
        usage.resident_nodes += nodes;
        Ok(())
    }

    /// Release a terminal job's charge.
    pub fn release(&mut self, tenant: &str, nodes: usize) {
        let usage = self
            .usage
            .get_mut(tenant)
            .expect("release for a tenant that never charged");
        usage.in_flight -= 1;
        usage.resident_nodes -= nodes;
    }

    /// Current usage snapshot for a tenant.
    pub fn usage(&self, tenant: &str) -> TenantUsage {
        self.usage.get(tenant).copied().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_by_default() {
        let mut ledger = QuotaLedger::default();
        for _ in 0..1000 {
            ledger.try_charge("anyone", 1 << 20).unwrap();
        }
        assert_eq!(ledger.usage("anyone").in_flight, 1000);
    }

    #[test]
    fn in_flight_limit_rejects_then_recovers() {
        let mut quotas = HashMap::new();
        quotas.insert(
            "acme".to_string(),
            TenantQuota {
                max_in_flight: 2,
                max_resident_nodes: usize::MAX,
            },
        );
        let mut ledger = QuotaLedger::new(quotas);
        ledger.try_charge("acme", 10).unwrap();
        ledger.try_charge("acme", 10).unwrap();
        assert!(matches!(
            ledger.try_charge("acme", 10),
            Err(SubmitError::QuotaExceeded { .. })
        ));
        // Another tenant is unaffected.
        ledger.try_charge("nova", 10).unwrap();
        // Releasing frees a slot.
        ledger.release("acme", 10);
        ledger.try_charge("acme", 10).unwrap();
    }

    #[test]
    fn resident_node_limit_counts_lattice_size() {
        let mut quotas = HashMap::new();
        quotas.insert(
            "acme".to_string(),
            TenantQuota {
                max_in_flight: usize::MAX,
                max_resident_nodes: 1000,
            },
        );
        let mut ledger = QuotaLedger::new(quotas);
        ledger.try_charge("acme", 600).unwrap();
        assert!(ledger.try_charge("acme", 600).is_err());
        ledger.try_charge("acme", 400).unwrap();
        ledger.release("acme", 600);
        ledger.try_charge("acme", 600).unwrap();
    }
}
