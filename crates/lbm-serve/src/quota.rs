//! Per-tenant admission control.
//!
//! Two independent limits, both charged at submit time and released when a
//! job reaches a terminal state:
//!
//! * **in-flight jobs** — everything submitted and not yet
//!   completed/canceled/failed (queued, running, and evicted jobs all
//!   count: an evicted job still owns its checkpoint bytes);
//! * **resident bytes** — the device memory the tenant's in-flight jobs
//!   pin. Submission charges the spec's *estimate*
//!   ([`crate::spec::JobSpec::estimated_resident_bytes`], the roofline
//!   model's per-pattern footprint); once the solver is built the
//!   scheduler **trues the charge up** to the driver's actual allocation
//!   ([`lbm_core::Simulation::resident_bytes`]) via [`QuotaLedger::recharge`],
//!   so the ledger never drifts from what the lattice buffers really hold
//!   — in-place AA/twist jobs are charged exactly `Q·8`/`M·8` per node,
//!   half of their two-lattice counterparts.
//!
//! Rejection is synchronous ([`SubmitError::QuotaExceeded`]) rather than
//! queued-but-deprioritized: a tenant at its limit gets immediate
//! backpressure instead of a silently growing backlog.

use crate::job::SubmitError;
use std::collections::HashMap;

/// Limits for one tenant. `usize::MAX` (the default) means unlimited.
#[derive(Clone, Copy, Debug)]
pub struct TenantQuota {
    /// Max jobs submitted and not yet terminal.
    pub max_in_flight: usize,
    /// Max total resident lattice bytes across in-flight jobs.
    pub max_resident_bytes: usize,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            max_in_flight: usize::MAX,
            max_resident_bytes: usize::MAX,
        }
    }
}

/// What one tenant currently holds.
#[derive(Clone, Copy, Debug, Default)]
pub struct TenantUsage {
    pub in_flight: usize,
    pub resident_bytes: usize,
}

/// A post-admission true-up left the tenant above its resident-byte limit.
///
/// Admission was checked against the *estimate*; the built solver turned
/// out larger (ghost columns, link tables) and pushed the ledger past
/// `max_resident_bytes`. The job is not killed — its bytes are already
/// resident — but the breach must be surfaced so the scheduler can count
/// it and operators can see a tenant running beyond its budget instead of
/// the ledger silently absorbing the overage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuotaBreach {
    pub tenant: String,
    /// The tenant's total resident bytes after the true-up.
    pub resident_bytes: usize,
    /// The limit those bytes exceed.
    pub max_resident_bytes: usize,
}

/// Admission ledger: per-tenant usage checked against per-tenant quotas.
#[derive(Default)]
pub struct QuotaLedger {
    quotas: HashMap<String, TenantQuota>,
    usage: HashMap<String, TenantUsage>,
}

impl QuotaLedger {
    pub fn new(quotas: HashMap<String, TenantQuota>) -> Self {
        QuotaLedger {
            quotas,
            usage: HashMap::new(),
        }
    }

    /// Charge a submission, or explain why it cannot be admitted. On `Ok`
    /// the usage is already recorded.
    pub fn try_charge(&mut self, tenant: &str, bytes: usize) -> Result<(), SubmitError> {
        let quota = self.quotas.get(tenant).copied().unwrap_or_default();
        let usage = self.usage.entry(tenant.to_string()).or_default();
        if usage.in_flight + 1 > quota.max_in_flight {
            return Err(SubmitError::QuotaExceeded {
                tenant: tenant.to_string(),
                reason: format!(
                    "{} jobs in flight (limit {})",
                    usage.in_flight, quota.max_in_flight
                ),
            });
        }
        if usage.resident_bytes + bytes > quota.max_resident_bytes {
            return Err(SubmitError::QuotaExceeded {
                tenant: tenant.to_string(),
                reason: format!(
                    "{} + {} resident bytes would exceed limit {}",
                    usage.resident_bytes, bytes, quota.max_resident_bytes
                ),
            });
        }
        usage.in_flight += 1;
        usage.resident_bytes += bytes;
        Ok(())
    }

    /// True an admitted job's byte charge up (or down) to the solver's
    /// actual allocation. Never rejects — admission already happened on
    /// the estimate; this keeps the ledger honest about what the built
    /// driver really holds resident. The new balance is re-checked against
    /// `max_resident_bytes`: a true-up that lands the tenant over its
    /// limit returns the [`QuotaBreach`] (previously the overage was
    /// silently absorbed, so a lowballed estimate bypassed the quota for
    /// the whole life of the job).
    #[must_use = "a Some(QuotaBreach) means the tenant is over quota and must be surfaced"]
    pub fn recharge(
        &mut self,
        tenant: &str,
        old_bytes: usize,
        new_bytes: usize,
    ) -> Option<QuotaBreach> {
        let quota = self.quotas.get(tenant).copied().unwrap_or_default();
        let usage = self
            .usage
            .get_mut(tenant)
            .expect("recharge for a tenant that never charged");
        usage.resident_bytes = usage.resident_bytes - old_bytes + new_bytes;
        (usage.resident_bytes > quota.max_resident_bytes).then(|| QuotaBreach {
            tenant: tenant.to_string(),
            resident_bytes: usage.resident_bytes,
            max_resident_bytes: quota.max_resident_bytes,
        })
    }

    /// Release a terminal job's charge.
    pub fn release(&mut self, tenant: &str, bytes: usize) {
        let usage = self
            .usage
            .get_mut(tenant)
            .expect("release for a tenant that never charged");
        usage.in_flight -= 1;
        usage.resident_bytes -= bytes;
    }

    /// Current usage snapshot for a tenant.
    pub fn usage(&self, tenant: &str) -> TenantUsage {
        self.usage.get(tenant).copied().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_by_default() {
        let mut ledger = QuotaLedger::default();
        for _ in 0..1000 {
            ledger.try_charge("anyone", 1 << 20).unwrap();
        }
        assert_eq!(ledger.usage("anyone").in_flight, 1000);
    }

    #[test]
    fn in_flight_limit_rejects_then_recovers() {
        let mut quotas = HashMap::new();
        quotas.insert(
            "acme".to_string(),
            TenantQuota {
                max_in_flight: 2,
                max_resident_bytes: usize::MAX,
            },
        );
        let mut ledger = QuotaLedger::new(quotas);
        ledger.try_charge("acme", 10).unwrap();
        ledger.try_charge("acme", 10).unwrap();
        assert!(matches!(
            ledger.try_charge("acme", 10),
            Err(SubmitError::QuotaExceeded { .. })
        ));
        // Another tenant is unaffected.
        ledger.try_charge("nova", 10).unwrap();
        // Releasing frees a slot.
        ledger.release("acme", 10);
        ledger.try_charge("acme", 10).unwrap();
    }

    #[test]
    fn resident_byte_limit_counts_lattice_bytes() {
        let mut quotas = HashMap::new();
        quotas.insert(
            "acme".to_string(),
            TenantQuota {
                max_in_flight: usize::MAX,
                max_resident_bytes: 1000,
            },
        );
        let mut ledger = QuotaLedger::new(quotas);
        ledger.try_charge("acme", 600).unwrap();
        assert!(ledger.try_charge("acme", 600).is_err());
        ledger.try_charge("acme", 400).unwrap();
        ledger.release("acme", 600);
        ledger.try_charge("acme", 600).unwrap();
    }

    /// The true-up moves the balance without touching in-flight counts,
    /// and the release of the trued-up charge zeroes the ledger.
    #[test]
    fn recharge_trues_up_to_actual_allocation() {
        let mut ledger = QuotaLedger::default();
        ledger.try_charge("acme", 1000).unwrap();
        assert!(ledger.recharge("acme", 1000, 640).is_none());
        let u = ledger.usage("acme");
        assert_eq!((u.in_flight, u.resident_bytes), (1, 640));
        // True-up may also grow the charge (multi-device ghost columns).
        assert!(ledger.recharge("acme", 640, 700).is_none());
        assert_eq!(ledger.usage("acme").resident_bytes, 700);
        ledger.release("acme", 700);
        let u = ledger.usage("acme");
        assert_eq!((u.in_flight, u.resident_bytes), (0, 0));
    }

    /// Regression for the quota bypass: a true-up that grows the charge
    /// past `max_resident_bytes` must report the breach instead of
    /// silently absorbing it — admission rejected 600+600 above, but
    /// before the re-check 600-estimated jobs could true up to any size.
    #[test]
    fn recharge_past_limit_surfaces_breach() {
        let mut quotas = HashMap::new();
        quotas.insert(
            "acme".to_string(),
            TenantQuota {
                max_in_flight: usize::MAX,
                max_resident_bytes: 1000,
            },
        );
        let mut ledger = QuotaLedger::new(quotas);
        ledger.try_charge("acme", 600).unwrap();
        ledger.try_charge("acme", 300).unwrap();
        // Second job's solver builds bigger than estimated: 300 → 700.
        let breach = ledger.recharge("acme", 300, 700).expect("over the limit");
        assert_eq!(
            breach,
            QuotaBreach {
                tenant: "acme".into(),
                resident_bytes: 1300,
                max_resident_bytes: 1000,
            }
        );
        // The ledger still records the honest balance; a shrinking true-up
        // back under the limit clears the condition.
        assert_eq!(ledger.usage("acme").resident_bytes, 1300);
        assert!(ledger.recharge("acme", 700, 350).is_none());
        assert_eq!(ledger.usage("acme").resident_bytes, 950);
        // Unlimited tenants can never breach.
        let mut open = QuotaLedger::default();
        open.try_charge("nova", 10).unwrap();
        assert!(open.recharge("nova", 10, usize::MAX / 2).is_none());
    }
}
