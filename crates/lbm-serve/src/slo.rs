//! Service-level objectives: rolling latency quantiles, burn-rate
//! counters, and a deterministic feedback controller over the scheduler's
//! tunables.
//!
//! The controller is AIMD over two knobs — `slice_steps` (preemption
//! granularity) and `batch_max` (group width):
//!
//! * **Multiplicative decrease** — an interactive completion over the p99
//!   target is a *breach*. If the cooldown has expired, `slice_steps`
//!   halves and `batch_max` shrinks by one (both bounds-clamped). Shorter
//!   slices reach preemption points sooner; narrower groups hold fewer
//!   batch jobs in front of waiting interactive work.
//! * **Additive increase** — after `increase_after` consecutive healthy
//!   interactive completions, `slice_steps` grows by one, recovering batch
//!   throughput when latency has headroom.
//!
//! Every decision is a pure function of the observation sequence (no
//! clocks, no randomness), so a replayed workload reproduces the exact
//! tuning history. Quantiles come from the bounded-memory
//! [`StreamingQuantile`] sketch in `obs`; burn rate is the fraction of
//! interactive completions that breached the target.

use crate::spec::Priority;
use obs::json::Value;
use obs::StreamingQuantile;

/// Bounds and targets for the feedback controller.
#[derive(Clone, Debug)]
pub struct SloPolicy {
    /// Interactive p99 latency target (milliseconds).
    pub interactive_p99_target_ms: f64,
    /// Lower clamp for `slice_steps` (must be ≥ 1).
    pub min_slice_steps: u64,
    /// Upper clamp for `slice_steps`.
    pub max_slice_steps: u64,
    /// Lower clamp for `batch_max` (must be ≥ 1).
    pub min_batch_max: usize,
    /// Upper clamp for `batch_max`.
    pub max_batch_max: usize,
    /// Interactive observations that must pass between consecutive
    /// decrease decisions (prevents one latency spike from collapsing the
    /// knobs to their floors).
    pub cooldown: u64,
    /// Consecutive healthy interactive completions before one additive
    /// increase step.
    pub increase_after: u64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            interactive_p99_target_ms: 25.0,
            min_slice_steps: 1,
            max_slice_steps: 64,
            min_batch_max: 1,
            max_batch_max: 8,
            cooldown: 4,
            increase_after: 32,
        }
    }
}

impl SloPolicy {
    /// Clamp a starting configuration into the policy's bounds.
    pub fn clamp(&self, slice_steps: u64, batch_max: usize) -> (u64, usize) {
        (
            slice_steps.clamp(self.min_slice_steps, self.max_slice_steps),
            batch_max.clamp(self.min_batch_max, self.max_batch_max),
        )
    }
}

/// One knob adjustment emitted by [`SloController::observe`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TuneDecision {
    /// New round-robin slice length.
    pub slice_steps: u64,
    /// New lockstep group width.
    pub batch_max: usize,
    /// `"breach"` (multiplicative decrease) or `"headroom"` (additive
    /// increase).
    pub reason: &'static str,
}

/// Per-class latency statistics.
struct ClassStats {
    quantiles: StreamingQuantile,
    total: u64,
    breaches: u64,
}

impl ClassStats {
    fn new() -> Self {
        ClassStats {
            quantiles: StreamingQuantile::new(obs::metrics::DEFAULT_QUANTILE_CAPACITY),
            total: 0,
            breaches: 0,
        }
    }

    fn burn_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.breaches as f64 / self.total as f64
        }
    }

    fn summary(&self) -> Value {
        let q = |p: f64| Value::num(self.quantiles.quantile(p).unwrap_or(0.0));
        Value::obj(vec![
            ("count", Value::int(self.total)),
            ("breaches", Value::int(self.breaches)),
            ("burn_rate", Value::num(self.burn_rate())),
            ("p50_ms", q(0.50)),
            ("p90_ms", q(0.90)),
            ("p99_ms", q(0.99)),
            (
                "mean_ms",
                Value::num(if self.total == 0 {
                    0.0
                } else {
                    self.quantiles.mean()
                }),
            ),
            ("max_ms", Value::num(self.quantiles.max().unwrap_or(0.0))),
        ])
    }
}

/// The streaming SLO tracker + feedback controller. One per [`crate::Serve`];
/// the scheduler feeds it every completion latency under its state lock, so
/// the observation order — and therefore the whole tuning history — is the
/// scheduler's own decision order.
pub struct SloController {
    policy: SloPolicy,
    interactive: ClassStats,
    batch: ClassStats,
    slice_steps: u64,
    batch_max: usize,
    /// Interactive observations since the last decision (starts at
    /// `cooldown` so the first breach can act immediately).
    since_tune: u64,
    healthy_streak: u64,
    tunes: u64,
}

impl SloController {
    /// Start from the scheduler's static configuration (bounds-clamped).
    pub fn new(policy: SloPolicy, slice_steps: u64, batch_max: usize) -> Self {
        let (slice_steps, batch_max) = policy.clamp(slice_steps, batch_max);
        SloController {
            since_tune: policy.cooldown,
            policy,
            interactive: ClassStats::new(),
            batch: ClassStats::new(),
            slice_steps,
            batch_max,
            healthy_streak: 0,
            tunes: 0,
        }
    }

    /// Record one completion latency. Interactive observations may emit a
    /// [`TuneDecision`]; batch observations only feed the batch quantiles.
    pub fn observe(&mut self, class: Priority, latency_ms: f64) -> Option<TuneDecision> {
        let stats = match class {
            Priority::Interactive => &mut self.interactive,
            Priority::Batch => &mut self.batch,
        };
        stats.total += 1;
        stats.quantiles.observe(latency_ms);
        let breach = latency_ms > self.policy.interactive_p99_target_ms;
        if breach {
            stats.breaches += 1;
        }
        if class != Priority::Interactive {
            return None;
        }
        self.since_tune += 1;
        if breach {
            self.healthy_streak = 0;
            let at_floor = self.slice_steps == self.policy.min_slice_steps
                && self.batch_max == self.policy.min_batch_max;
            if self.since_tune > self.policy.cooldown && !at_floor {
                self.slice_steps = (self.slice_steps / 2).max(self.policy.min_slice_steps);
                self.batch_max = self
                    .batch_max
                    .saturating_sub(1)
                    .max(self.policy.min_batch_max);
                return Some(self.decide("breach"));
            }
        } else {
            self.healthy_streak += 1;
            if self.healthy_streak >= self.policy.increase_after
                && self.slice_steps < self.policy.max_slice_steps
            {
                self.slice_steps += 1;
                return Some(self.decide("headroom"));
            }
        }
        None
    }

    fn decide(&mut self, reason: &'static str) -> TuneDecision {
        self.since_tune = 0;
        self.healthy_streak = 0;
        self.tunes += 1;
        TuneDecision {
            slice_steps: self.slice_steps,
            batch_max: self.batch_max,
            reason,
        }
    }

    /// Current knob settings.
    pub fn tuned(&self) -> (u64, usize) {
        (self.slice_steps, self.batch_max)
    }

    /// Decisions emitted so far.
    pub fn tunes(&self) -> u64 {
        self.tunes
    }

    /// Interactive burn rate (fraction of completions over target).
    pub fn interactive_burn_rate(&self) -> f64 {
        self.interactive.burn_rate()
    }

    /// JSON summary for bench records: per-class quantiles and burn rates
    /// plus the controller's final state.
    pub fn summary(&self) -> Value {
        Value::obj(vec![
            (
                "target_p99_ms",
                Value::num(self.policy.interactive_p99_target_ms),
            ),
            ("interactive", self.interactive.summary()),
            ("batch", self.batch.summary()),
            ("tunes", Value::int(self.tunes)),
            ("slice_steps", Value::int(self.slice_steps)),
            ("batch_max", Value::int(self.batch_max as u64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> SloPolicy {
        SloPolicy {
            interactive_p99_target_ms: 10.0,
            min_slice_steps: 1,
            max_slice_steps: 64,
            min_batch_max: 1,
            max_batch_max: 8,
            cooldown: 2,
            increase_after: 4,
        }
    }

    /// The first breach past cooldown halves the slice and narrows the
    /// group; repeated breaches walk both knobs to their floors and stop.
    #[test]
    fn breaches_decrease_multiplicatively_within_bounds() {
        let mut c = SloController::new(policy(), 64, 8);
        let mut decisions = Vec::new();
        for _ in 0..40 {
            if let Some(d) = c.observe(Priority::Interactive, 50.0) {
                decisions.push(d);
            }
        }
        let slices: Vec<u64> = decisions.iter().map(|d| d.slice_steps).collect();
        assert_eq!(slices[0], 32, "first decision halves 64");
        assert!(slices.windows(2).all(|w| w[1] < w[0] || w[1] == 1));
        let (s, b) = c.tuned();
        assert_eq!((s, b), (1, 1), "floors reached");
        assert!(decisions.iter().all(|d| d.reason == "breach"));
        // At the floor the controller stops emitting decisions entirely.
        assert!(c.observe(Priority::Interactive, 50.0).is_none());
        assert!((c.interactive_burn_rate() - 1.0).abs() < 1e-12);
    }

    /// Healthy completions accumulate into additive increases, bounded
    /// above, and a single breach resets the streak.
    #[test]
    fn headroom_increases_additively_and_breach_resets_streak() {
        let mut c = SloController::new(policy(), 4, 4);
        for _ in 0..3 {
            assert!(c.observe(Priority::Interactive, 1.0).is_none());
        }
        let d = c.observe(Priority::Interactive, 1.0).expect("4th healthy");
        assert_eq!((d.slice_steps, d.reason), (5, "headroom"));
        // Streak broken at 3: the breach itself tunes down instead.
        for _ in 0..3 {
            assert!(c.observe(Priority::Interactive, 1.0).is_none());
        }
        let d = c
            .observe(Priority::Interactive, 99.0)
            .expect("breach tunes");
        assert_eq!((d.slice_steps, d.batch_max, d.reason), (2, 3, "breach"));
    }

    /// Batch observations feed quantiles but never tune, and the
    /// controller's history is a pure function of the observation order.
    #[test]
    fn batch_never_tunes_and_replay_is_deterministic() {
        let run = |seq: &[(Priority, f64)]| {
            let mut c = SloController::new(policy(), 8, 4);
            let ds: Vec<_> = seq.iter().filter_map(|&(p, l)| c.observe(p, l)).collect();
            (ds, c.tuned(), c.tunes())
        };
        let seq: Vec<(Priority, f64)> = (0..200)
            .map(|i| {
                if i % 3 == 0 {
                    (Priority::Batch, 500.0)
                } else {
                    (Priority::Interactive, if i % 7 == 0 { 30.0 } else { 2.0 })
                }
            })
            .collect();
        let (d1, t1, n1) = run(&seq);
        let (d2, t2, n2) = run(&seq);
        assert_eq!(d1, d2);
        assert_eq!(t1, t2);
        assert_eq!(n1, n2);
        let only_batch = [(Priority::Batch, 500.0); 50];
        let (ds, tuned, _) = run(&only_batch);
        assert!(ds.is_empty(), "batch breaches must not tune");
        assert_eq!(tuned, (8, 4));
    }
}
