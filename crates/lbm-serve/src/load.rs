//! Deterministic synthetic workload for load tests.
//!
//! An LCG-seeded arrival process producing a fixed job mix: mostly small
//! interactive 2D problems (a fifth of them porous slabs on the sparse
//! drivers), a tail of medium batch work, and an occasional multi-device
//! or 3D job. Two generators built with the same seed emit
//! *identical* spec sequences — the replay tests and the `BENCH_serve`
//! load driver both rely on that.

use crate::spec::{JobSpec, Pattern, Priority, Scenario};

/// Tenants the generator cycles through.
pub const TENANTS: [&str; 4] = ["acme", "nova", "zephyr", "orbit"];

/// Deterministic arrival process: an iterator over `n` job specs.
#[derive(Clone, Debug)]
pub struct ArrivalProcess {
    state: u64,
    remaining: usize,
    emitted: usize,
}

impl ArrivalProcess {
    /// `seed` fixes the whole sequence; `n` bounds its length.
    pub fn new(seed: u64, n: usize) -> Self {
        ArrivalProcess {
            // Avoid the LCG's zero fixed point without changing user seeds.
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
            remaining: n,
            emitted: 0,
        }
    }

    /// Next raw LCG draw (Knuth MMIX constants), upper bits.
    fn draw(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state >> 17
    }

    /// Uniform draw in `0..m`.
    fn below(&mut self, m: u64) -> u64 {
        self.draw() % m
    }
}

impl Iterator for ArrivalProcess {
    type Item = JobSpec;

    fn next(&mut self) -> Option<JobSpec> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let tenant = TENANTS[self.emitted % TENANTS.len()].to_string();
        self.emitted += 1;

        let pattern = match self.below(3) {
            0 => Pattern::St,
            1 => Pattern::MrP,
            _ => Pattern::MrR,
        };
        let tau = 0.7 + 0.05 * self.below(7) as f64; // 0.70..=1.00
        let mix = self.below(100);
        let spec = if mix < 70 {
            // Small interactive 2D job: low latency is the point. One in
            // five runs a deterministic porous slab on the fluid-compacted
            // sparse drivers (porous scenarios require a sparse pattern).
            let nx = 12 + 4 * self.below(4) as usize; // 12..=24
            let ny = 6 + 2 * self.below(3) as usize; // 6..=10
            let (scenario, pattern) = if self.below(5) == 0 {
                (
                    Scenario::Porous2D {
                        nx,
                        ny,
                        solid_pct: 20 + 5 * self.below(4) as u8, // 20..=35
                    },
                    if self.below(2) == 0 {
                        Pattern::SparseSt
                    } else {
                        Pattern::SparseMr
                    },
                )
            } else {
                (Scenario::Shear2D { nx, ny }, pattern)
            };
            JobSpec {
                tenant,
                priority: Priority::Interactive,
                scenario,
                pattern,
                tau,
                steps: 4 + 2 * self.below(5), // 4..=12
                devices: 1,
                resilient: false,
                fault_plan: None,
                monitor: None,
            }
        } else if mix < 95 {
            // Medium batch job: bigger lattice, longer horizon.
            JobSpec {
                tenant,
                priority: Priority::Batch,
                scenario: Scenario::Shear2D {
                    nx: 32 + 8 * self.below(3) as usize, // 32..=48
                    ny: 12 + 4 * self.below(3) as usize, // 12..=20
                },
                pattern,
                tau,
                steps: 24 + 8 * self.below(4), // 24..=48
                devices: 1,
                resilient: false,
                fault_plan: None,
                monitor: None,
            }
        } else if mix < 98 {
            // Multi-device batch 2D: exercises the sharded drivers.
            JobSpec {
                tenant,
                priority: Priority::Batch,
                scenario: Scenario::Shear2D { nx: 40, ny: 16 },
                pattern,
                tau,
                steps: 16 + 8 * self.below(3),
                devices: 2 + self.below(2) as usize, // 2..=3
                resilient: false,
                fault_plan: None,
                monitor: None,
            }
        } else {
            // Small 3D duct: the D3Q19 paths.
            JobSpec {
                tenant,
                priority: Priority::Batch,
                scenario: Scenario::Shear3D {
                    nx: 10,
                    ny: 6,
                    nz: 6,
                },
                pattern,
                tau,
                steps: 8 + 4 * self.below(3),
                devices: 1,
                resilient: false,
                fault_plan: None,
                monitor: None,
            }
        };
        Some(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let a: Vec<JobSpec> = ArrivalProcess::new(42, 200).collect();
        let b: Vec<JobSpec> = ArrivalProcess::new(42, 200).collect();
        assert_eq!(a.len(), 200);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.priority, y.priority);
            assert_eq!(x.scenario, y.scenario);
            assert_eq!(x.pattern, y.pattern);
            assert_eq!(x.tau.to_bits(), y.tau.to_bits());
            assert_eq!(x.steps, y.steps);
            assert_eq!(x.devices, y.devices);
        }
    }

    #[test]
    fn different_seeds_diverge_and_all_specs_validate() {
        let a: Vec<JobSpec> = ArrivalProcess::new(1, 300).collect();
        let b: Vec<JobSpec> = ArrivalProcess::new(2, 300).collect();
        assert!(
            a.iter()
                .zip(&b)
                .any(|(x, y)| x.scenario != y.scenario || x.steps != y.steps),
            "seeds 1 and 2 produced identical workloads"
        );
        for s in a.iter().chain(&b) {
            s.validate().expect("generator emitted an invalid spec");
        }
    }

    #[test]
    fn mix_contains_all_classes() {
        let specs: Vec<JobSpec> = ArrivalProcess::new(7, 500).collect();
        let interactive = specs
            .iter()
            .filter(|s| s.priority == Priority::Interactive)
            .count();
        let multi = specs.iter().filter(|s| s.devices > 1).count();
        let threed = specs
            .iter()
            .filter(|s| matches!(s.scenario, Scenario::Shear3D { .. }))
            .count();
        assert!(
            interactive > 250,
            "interactive share collapsed: {interactive}"
        );
        assert!(interactive < 450, "batch share collapsed");
        assert!(multi > 0, "no multi-device jobs in 500 draws");
        assert!(threed > 0, "no 3D jobs in 500 draws");
        let sparse = specs.iter().filter(|s| s.pattern.is_sparse()).count();
        assert!(sparse > 20, "sparse share collapsed: {sparse}");
        assert!(
            specs
                .iter()
                .filter(|s| matches!(s.scenario, Scenario::Porous2D { .. }))
                .all(|s| s.pattern.is_sparse()),
            "porous jobs must ride the sparse drivers"
        );
    }
}
