//! `lbm-serve` — a multi-tenant simulation service over the workspace's
//! six LBM drivers.
//!
//! Tenants submit [`JobSpec`]s; a std-only scheduler (worker threads,
//! mutexes, condvars — no async runtime) multiplexes the resulting
//! simulations across a shared pool of simulated devices:
//!
//! * [`spec`] — job specifications: scenario, propagation pattern
//!   (ST / MR-P / MR-R), relaxation time, step target, device count;
//!   validation; and the solo-run checksum oracle.
//! * [`job`] — job identity, lifecycle states, results, submit errors.
//! * [`quota`] — per-tenant admission control (in-flight jobs, resident
//!   lattice nodes).
//! * [`scheduler`] — batched lockstep dispatch, checkpoint-backed
//!   preemption with priority aging, and the public [`Serve`] handle.
//! * [`slo`] — rolling latency quantiles, burn-rate counters, and the
//!   deterministic AIMD feedback controller over
//!   `slice_steps` / `batch_max`.
//! * [`load`] — a seeded deterministic arrival process for load tests
//!   (the `BENCH_serve` driver and the replay tests share it).
//!
//! The service's headline contract is inherited from the substrate's
//! determinism: **every job's final field checksum is bitwise-equal to a
//! solo run of its spec**, regardless of batching, time-slicing, or how
//! many times the job was evicted and resumed along the way.

pub mod job;
pub mod load;
pub mod quota;
pub mod scheduler;
pub mod slo;
pub mod spec;

pub use job::{JobId, JobResult, JobState, JobStatus, SubmitError};
pub use load::ArrivalProcess;
pub use quota::{QuotaBreach, QuotaLedger, TenantQuota, TenantUsage};
pub use scheduler::{Serve, ServeConfig};
pub use slo::{SloController, SloPolicy, TuneDecision};
pub use spec::{solo_checksum, JobSpec, Pattern, Priority, Scenario};
