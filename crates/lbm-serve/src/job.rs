//! Job identity, lifecycle states, and results.

use crate::spec::Priority;

/// Opaque handle for a submitted job, unique within one [`crate::Serve`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Where a job is in its lifecycle.
///
/// ```text
/// Queued ──▶ Running ──▶ Completed
///   ▲           │
///   │ (resume)  ├──▶ Evicted ──▶ Queued  (checkpoint-backed preemption)
///   │           ├──▶ Failed               (panic or unrecoverable fault)
///   └───────────┴──▶ Canceled             (also directly from Queued)
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the ready queue (first time or after an eviction).
    Queued,
    /// Owned by an executor, inside a lockstep group.
    Running,
    /// Preempted: checkpointed, solver dropped, back in the ready queue.
    /// (Transient — observable between eviction and re-dispatch.)
    Evicted,
    Completed,
    Canceled,
    Failed,
}

impl JobState {
    /// Terminal states never change again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Canceled | JobState::Failed
        )
    }
}

/// Point-in-time view of a job.
#[derive(Clone, Debug)]
pub struct JobStatus {
    pub id: JobId,
    pub tenant: String,
    pub priority: Priority,
    pub state: JobState,
    /// Steps completed so far (survives evictions via the checkpoint).
    pub steps_done: u64,
    pub steps_target: u64,
    /// Times this job was preempted.
    pub evictions: u64,
    /// Current effective priority (base class + aging credit).
    pub effective_priority: u64,
}

/// Final outcome of a completed job.
#[derive(Clone, Debug)]
pub struct JobResult {
    pub id: JobId,
    /// FNV-1a checksum of the final macroscopic fields — bitwise-equal to
    /// a solo run of the same spec by the service's determinism contract.
    pub checksum: u64,
    /// Timesteps executed (== the spec's target).
    pub steps: u64,
    /// Submit → completion wall-clock latency.
    pub latency_ms: f64,
    /// Times the job was evicted and resumed along the way.
    pub evictions: u64,
    /// Rollbacks performed by the recovery loop (resilient jobs only).
    pub rollbacks: u64,
}

/// Why a submission was rejected.
#[derive(Debug)]
pub enum SubmitError {
    /// The spec failed validation (reason inside).
    Invalid(String),
    /// The tenant is at one of its quota limits.
    QuotaExceeded { tenant: String, reason: String },
    /// The service is draining/shut down.
    Shutdown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Invalid(why) => write!(f, "invalid job spec: {why}"),
            SubmitError::QuotaExceeded { tenant, reason } => {
                write!(f, "tenant {tenant} over quota: {reason}")
            }
            SubmitError::Shutdown => write!(f, "service is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_states() {
        assert!(JobState::Completed.is_terminal());
        assert!(JobState::Canceled.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(!JobState::Evicted.is_terminal());
    }

    #[test]
    fn submit_error_displays() {
        let e = SubmitError::QuotaExceeded {
            tenant: "acme".into(),
            reason: "3 jobs in flight (limit 3)".into(),
        };
        assert_eq!(
            e.to_string(),
            "tenant acme over quota: 3 jobs in flight (limit 3)"
        );
        assert_eq!(
            SubmitError::Invalid("steps must be >= 1".into()).to_string(),
            "invalid job spec: steps must be >= 1"
        );
    }
}
