//! The fleet scheduler: executor threads multiplexing many simulations
//! over a shared device pool.
//!
//! # Batched lockstep dispatch
//!
//! Each executor pulls a *group* of up to `batch_max` compatible jobs
//! (same scheduling class) from the ready queue and drives them in
//! time-sliced round-robin: `slice_steps` timesteps of job A, then B, then
//! C, then back to A. Because every solver in the workspace is
//! bitwise-deterministic and slicing only changes *when* steps run — never
//! their arithmetic — a job's final field checksum is identical to a solo
//! run of the same spec, no matter how it was grouped, sliced, or
//! preempted.
//!
//! # Checkpoint-backed preemption
//!
//! When an interactive-priority job is waiting and no executor is idle, an
//! executor running an evictable batch group checkpoints its unfinished
//! members (LBCK codec), drops the solvers, and requeues the jobs with
//! their snapshot attached; the interactive work runs next. On
//! re-dispatch the spec is rebuilt and the snapshot restored — an exact
//! continuation, not an approximation.
//!
//! # Priority, aging, and the starvation bound
//!
//! Interactive jobs start at `interactive_base` effective priority, batch
//! jobs at 0. Every dispatch round that passes a queued job over adds
//! `aging` credit. Two consequences:
//!
//! * the queue drains highest-effective-priority first, so batch work
//!   climbs toward the front after at most `interactive_base / aging`
//!   passed-over rounds;
//! * a group is evictable only while every member's effective priority is
//!   *below* `interactive_base` — once a batch job has aged to the
//!   interactive level it can no longer be preempted, which bounds both
//!   its waiting time and the number of evictions any job can suffer.
//!
//! # Quotas
//!
//! Admission is checked synchronously against per-tenant limits
//! ([`crate::quota`]) — in-flight jobs and resident lattice nodes — and
//! released when a job reaches a terminal state.

use crate::job::{JobId, JobResult, JobState, JobStatus, SubmitError};
use crate::quota::{QuotaLedger, TenantQuota, TenantUsage};
use crate::slo::{SloController, SloPolicy};
use crate::spec::{JobSpec, Priority};
use lbm_core::Simulation;
use lbm_multi::recovery::{run_with_recovery, RecoveryConfig};
use obs::{EventKind, Obs, TraceCtx};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// Latency histogram bucket upper bounds, in **milliseconds** — the unit
/// `finalize` computes (`Instant::elapsed` seconds × 1e3) and the
/// `serve_job_latency_ms` metric name advertises. The bounds must be
/// finite, positive, and strictly ascending; the observation site in
/// `finalize` debug-asserts both properties so a unit mix-up (seconds or
/// microseconds fed into a millisecond histogram) fails loudly in tests
/// instead of silently piling everything into one bucket.
pub const LATENCY_BOUNDS_MS: [f64; 12] = [
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0,
];

/// Scheduler configuration.
#[derive(Clone)]
pub struct ServeConfig {
    /// Executor threads (each drives one lockstep group at a time).
    pub executors: usize,
    /// Max jobs per lockstep group.
    pub batch_max: usize,
    /// Timesteps per round-robin slice.
    pub slice_steps: u64,
    /// Effective priority an interactive job starts with (batch starts
    /// at 0). Also the eviction-immunity threshold.
    pub interactive_base: u64,
    /// Priority credit per passed-over dispatch round.
    pub aging: u64,
    /// CPU threads each solver may use. The default of 1 keeps every sim
    /// inline on its executor thread (the substrate's zero-worker pool
    /// mode), so `executors` is the true parallelism.
    pub cpu_threads_per_job: usize,
    /// Per-tenant admission limits (absent tenants are unlimited).
    pub quotas: HashMap<String, TenantQuota>,
    /// Observability hub: scheduler decisions become spans and typed
    /// events, queue/running state becomes gauges, outcomes become
    /// counters and latency histograms.
    pub obs: Option<Arc<Obs>>,
    /// Attach the hub and a per-job [`TraceCtx`] to every solver the
    /// fleet builds, so driver step/halo spans and substrate kernel spans
    /// carry `job`/`tenant`/`group`/`slice` labels. No effect without
    /// `obs`; purely observational either way — field checksums are
    /// bitwise-identical with it on or off.
    pub trace_jobs: bool,
    /// SLO feedback policy: when set, every completion latency feeds a
    /// [`SloController`] that retunes the live `slice_steps`/`batch_max`
    /// within the policy's bounds.
    pub slo: Option<SloPolicy>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            executors: 2,
            batch_max: 4,
            slice_steps: 8,
            interactive_base: 8,
            aging: 1,
            cpu_threads_per_job: 1,
            quotas: HashMap::new(),
            obs: None,
            trace_jobs: true,
            slo: None,
        }
    }
}

struct JobRec {
    spec: JobSpec,
    state: JobState,
    eff_prio: u64,
    steps_done: u64,
    /// LBCK snapshot carried while evicted (freed on resume).
    snapshot: Option<Vec<u8>>,
    evictions: u64,
    rollbacks: u64,
    cancel: bool,
    submitted_at: Instant,
    result: Option<JobResult>,
    /// Resident bytes currently charged to the tenant's quota for this
    /// job: the spec estimate at admission, trued up to the driver's
    /// actual allocation once the solver is built.
    charged_bytes: usize,
}

struct State {
    /// Ready queue (FIFO among equal effective priorities): job IDs in
    /// `Queued` or `Evicted` state.
    queue: Vec<JobId>,
    jobs: HashMap<JobId, JobRec>,
    ledger: QuotaLedger,
    /// Executors parked on `work_cv`.
    idle: usize,
    /// Jobs not yet in a terminal state.
    in_flight: usize,
    next_id: u64,
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    /// Wakes executors when work arrives (or shutdown).
    work_cv: Condvar,
    /// Wakes `wait`/`drain` when any job reaches a terminal state.
    done_cv: Condvar,
    cfg: ServeConfig,
    /// Live round-robin slice length: starts at `cfg.slice_steps`, moved
    /// only by SLO controller decisions (bounds-clamped).
    slice_steps: AtomicU64,
    /// Live group width: starts at `cfg.batch_max`, moved likewise.
    batch_max: AtomicUsize,
    /// The feedback controller, when `cfg.slo` is set. Locked only from
    /// `finalize` (under the state lock) and the summary accessor.
    slo: Option<Mutex<SloController>>,
    /// Monotonic lockstep-group IDs (the `group` field of [`TraceCtx`]).
    group_seq: AtomicU64,
}

impl Inner {
    fn obs(&self) -> Option<&Arc<Obs>> {
        self.cfg.obs.as_ref()
    }

    /// Append one typed event to the hub's scheduler event log (no-op
    /// without a hub).
    fn record_event(
        &self,
        kind: EventKind,
        job: Option<JobId>,
        tenant: &str,
        args: &[(&str, String)],
    ) {
        if let Some(o) = self.obs() {
            o.events.record(kind, job.map(|j| j.0), tenant, args);
        }
    }

    fn set_queue_gauges(&self, st: &State) {
        if let Some(o) = self.obs() {
            o.metrics
                .gauge_set("serve_queue_depth", &[], st.queue.len() as f64);
            o.metrics
                .gauge_set("serve_in_flight", &[], st.in_flight as f64);
            o.metrics
                .gauge_set("serve_idle_executors", &[], st.idle as f64);
        }
    }
}

/// One member of a running lockstep group.
struct Active {
    id: JobId,
    sim: Box<dyn Simulation + Send>,
    target: u64,
    done: u64,
    resilient: bool,
    fault_plan: Option<Arc<gpu_sim::FaultPlan>>,
    tenant: String,
    /// Fleet trace context pushed into the solver (present only when the
    /// hub is attached and `trace_jobs` is on); `slice` advances before
    /// every slice so nested spans carry the current slice number.
    ctx: Option<TraceCtx>,
}

/// The multi-tenant simulation service. Submit [`JobSpec`]s, poll
/// [`JobStatus`], await [`JobResult`]s; executor threads and all in-flight
/// solvers are owned by this handle and joined on drop.
pub struct Serve {
    inner: Arc<Inner>,
    executors: Vec<JoinHandle<()>>,
}

impl Serve {
    /// Start the service with `cfg.executors` executor threads.
    pub fn start(cfg: ServeConfig) -> Self {
        assert!(cfg.executors >= 1, "need at least one executor");
        assert!(cfg.batch_max >= 1, "need at least one job per group");
        assert!(cfg.slice_steps >= 1, "slices must advance time");
        let slo = cfg
            .slo
            .clone()
            .map(|p| Mutex::new(SloController::new(p, cfg.slice_steps, cfg.batch_max)));
        let (slice0, batch0) = slo.as_ref().map_or((cfg.slice_steps, cfg.batch_max), |c| {
            c.lock().unwrap().tuned()
        });
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: Vec::new(),
                jobs: HashMap::new(),
                ledger: QuotaLedger::new(cfg.quotas.clone()),
                idle: 0,
                in_flight: 0,
                next_id: 1,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            slice_steps: AtomicU64::new(slice0),
            batch_max: AtomicUsize::new(batch0),
            slo,
            group_seq: AtomicU64::new(0),
            cfg,
        });
        let executors = (0..inner.cfg.executors)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("lbm-serve-exec-{i}"))
                    .spawn(move || executor_loop(&inner))
                    .expect("spawn executor")
            })
            .collect();
        Serve { inner, executors }
    }

    /// Validate, admit against quota, and enqueue a job.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        spec.validate()?;
        let mut st = self.inner.state.lock().unwrap();
        if st.shutdown {
            return Err(SubmitError::Shutdown);
        }
        let est_bytes = spec.estimated_resident_bytes();
        st.ledger.try_charge(&spec.tenant, est_bytes)?;
        let id = JobId(st.next_id);
        st.next_id += 1;
        let eff_prio = match spec.priority {
            Priority::Interactive => self.inner.cfg.interactive_base,
            Priority::Batch => 0,
        };
        if let Some(o) = self.inner.obs() {
            o.metrics.counter_add(
                "serve_jobs_submitted",
                &[("tenant", &spec.tenant), ("class", spec.priority.label())],
                1,
            );
        }
        self.inner.record_event(
            EventKind::Admit,
            Some(id),
            &spec.tenant,
            &[
                ("class", spec.priority.label().to_string()),
                ("steps", spec.steps.to_string()),
                ("nodes", spec.scenario.nodes().to_string()),
                ("resident_bytes", est_bytes.to_string()),
                ("devices", spec.devices.to_string()),
            ],
        );
        st.jobs.insert(
            id,
            JobRec {
                spec,
                state: JobState::Queued,
                eff_prio,
                steps_done: 0,
                snapshot: None,
                evictions: 0,
                rollbacks: 0,
                cancel: false,
                submitted_at: Instant::now(),
                result: None,
                charged_bytes: est_bytes,
            },
        );
        st.queue.push(id);
        st.in_flight += 1;
        self.inner.set_queue_gauges(&st);
        self.inner.work_cv.notify_one();
        Ok(id)
    }

    /// Point-in-time status, or `None` for an unknown ID.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let st = self.inner.state.lock().unwrap();
        st.jobs.get(&id).map(|rec| JobStatus {
            id,
            tenant: rec.spec.tenant.clone(),
            priority: rec.spec.priority,
            state: rec.state,
            steps_done: rec.steps_done,
            steps_target: rec.spec.steps,
            evictions: rec.evictions,
            effective_priority: rec.eff_prio,
        })
    }

    /// The completed job's result, if it has one (`None` while in flight
    /// or for canceled/failed/unknown jobs).
    pub fn result(&self, id: JobId) -> Option<JobResult> {
        let st = self.inner.state.lock().unwrap();
        st.jobs.get(&id).and_then(|rec| rec.result.clone())
    }

    /// Cancel a job. Queued and evicted jobs are canceled synchronously;
    /// a running job is flagged and canceled at its next slice boundary.
    /// Returns `false` if the job is unknown or already terminal.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut st = self.inner.state.lock().unwrap();
        let Some(rec) = st.jobs.get_mut(&id) else {
            return false;
        };
        match rec.state {
            JobState::Queued | JobState::Evicted => {
                rec.cancel = true;
                st.queue.retain(|&q| q != id);
                finalize(&self.inner, &mut st, id, JobState::Canceled, None);
                true
            }
            JobState::Running => {
                rec.cancel = true;
                true
            }
            _ => false,
        }
    }

    /// Block until the job is terminal. `Ok` carries the result of a
    /// completed job; `Err` carries the terminal state of a canceled or
    /// failed one. Panics on an unknown ID.
    pub fn wait(&self, id: JobId) -> Result<JobResult, JobState> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            let rec = st.jobs.get(&id).expect("wait on unknown job");
            if rec.state.is_terminal() {
                return match rec.state {
                    JobState::Completed => {
                        Ok(rec.result.clone().expect("completed without result"))
                    }
                    s => Err(s),
                };
            }
            st = self.inner.done_cv.wait(st).unwrap();
        }
    }

    /// Block until every submitted job is terminal.
    pub fn drain(&self) {
        let mut st = self.inner.state.lock().unwrap();
        while st.in_flight > 0 {
            st = self.inner.done_cv.wait(st).unwrap();
        }
    }

    /// Jobs currently in the ready queue.
    pub fn queue_depth(&self) -> usize {
        self.inner.state.lock().unwrap().queue.len()
    }

    /// Jobs not yet terminal (queued + running + evicted).
    pub fn in_flight(&self) -> usize {
        self.inner.state.lock().unwrap().in_flight
    }

    /// Current usage the quota ledger holds for `tenant`.
    pub fn tenant_usage(&self, tenant: &str) -> TenantUsage {
        self.inner.state.lock().unwrap().ledger.usage(tenant)
    }

    /// Live tunables `(slice_steps, batch_max)` — the static config until
    /// the SLO controller moves them.
    pub fn tuned(&self) -> (u64, usize) {
        (
            self.inner.slice_steps.load(Ordering::Relaxed),
            self.inner.batch_max.load(Ordering::Relaxed),
        )
    }

    /// SLO summary — per-class latency quantiles, burn rates, and the
    /// controller's tuning state — when a policy is configured.
    pub fn slo_summary(&self) -> Option<obs::json::Value> {
        self.inner.slo.as_ref().map(|c| c.lock().unwrap().summary())
    }
}

impl Drop for Serve {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock().unwrap();
            st.shutdown = true;
            self.inner.work_cv.notify_all();
        }
        for h in self.executors.drain(..) {
            let _ = h.join();
        }
    }
}

/// Move a job into a terminal state: record the result (for completions),
/// release its quota charge, bump outcome counters, wake waiters. Caller
/// must have already detached the job from queue/group ownership.
fn finalize(
    inner: &Inner,
    st: &mut MutexGuard<'_, State>,
    id: JobId,
    terminal: JobState,
    result: Option<JobResult>,
) {
    debug_assert!(terminal.is_terminal());
    let rec = st.jobs.get_mut(&id).expect("finalize unknown job");
    debug_assert!(!rec.state.is_terminal(), "double finalize");
    rec.state = terminal;
    rec.snapshot = None;
    rec.result = result;
    let tenant = rec.spec.tenant.clone();
    let priority = rec.spec.priority;
    let class = priority.label();
    let charged = rec.charged_bytes;
    let evictions = rec.evictions;
    let latency_ms = rec.submitted_at.elapsed().as_secs_f64() * 1e3;
    st.ledger.release(&tenant, charged);
    st.in_flight -= 1;
    if let Some(o) = inner.obs() {
        let outcome = match terminal {
            JobState::Completed => "serve_jobs_completed",
            JobState::Canceled => "serve_jobs_canceled",
            _ => "serve_jobs_failed",
        };
        o.metrics
            .counter_add(outcome, &[("tenant", &tenant), ("class", class)], 1);
        if terminal == JobState::Completed {
            // Both the bounds and the observation are milliseconds — see
            // the `LATENCY_BOUNDS_MS` doc comment.
            debug_assert!(
                LATENCY_BOUNDS_MS[0] > 0.0
                    && LATENCY_BOUNDS_MS
                        .windows(2)
                        .all(|w| w[0] < w[1] && w[1].is_finite()),
                "LATENCY_BOUNDS_MS must be finite, positive, strictly ascending"
            );
            debug_assert!(
                latency_ms.is_finite() && latency_ms >= 0.0,
                "latency observation must be a finite non-negative millisecond value"
            );
            o.metrics.histogram_observe(
                "serve_job_latency_ms",
                &[("class", class)],
                &LATENCY_BOUNDS_MS,
                latency_ms,
            );
        }
    }
    let kind = match terminal {
        JobState::Completed => EventKind::Complete,
        JobState::Canceled => EventKind::Cancel,
        _ => EventKind::Fail,
    };
    inner.record_event(
        kind,
        Some(id),
        &tenant,
        &[
            ("latency_ms", format!("{latency_ms:.3}")),
            ("evictions", evictions.to_string()),
        ],
    );
    if terminal == JobState::Completed {
        if let Some(slo) = &inner.slo {
            let decision = slo.lock().unwrap().observe(priority, latency_ms);
            if let Some(d) = decision {
                inner.slice_steps.store(d.slice_steps, Ordering::Relaxed);
                inner.batch_max.store(d.batch_max, Ordering::Relaxed);
                if let Some(o) = inner.obs() {
                    o.metrics
                        .counter_add("serve_slo_tunes", &[("reason", d.reason)], 1);
                    o.metrics
                        .gauge_set("serve_tuned_slice_steps", &[], d.slice_steps as f64);
                    o.metrics
                        .gauge_set("serve_tuned_batch_max", &[], d.batch_max as f64);
                }
                inner.record_event(
                    EventKind::Tune,
                    None,
                    "",
                    &[
                        ("slice_steps", d.slice_steps.to_string()),
                        ("batch_max", d.batch_max.to_string()),
                        ("reason", d.reason.to_string()),
                    ],
                );
            }
        }
    }
    inner.set_queue_gauges(st);
    inner.done_cv.notify_all();
}

/// Pick the next lockstep group off the ready queue, or `None` if the
/// queue is empty. Leader = highest effective priority (FIFO among ties);
/// the rest of the group is filled with queue-order jobs of the same
/// class, up to the *live* (possibly SLO-tuned) group width. Passed-over
/// jobs gain `aging` credit. Returns the group's monotonic ID with its
/// members.
fn select_group(inner: &Inner, st: &mut MutexGuard<'_, State>) -> Option<(u64, Vec<JobId>)> {
    if st.queue.is_empty() {
        return None;
    }
    let leader_pos = st
        .queue
        .iter()
        .enumerate()
        .max_by_key(|&(pos, id)| (st.jobs[id].eff_prio, std::cmp::Reverse(pos)))
        .map(|(pos, _)| pos)
        .expect("non-empty queue");
    let leader = st.queue[leader_pos];
    let class = st.jobs[&leader].spec.priority;
    let batch_max = inner.batch_max.load(Ordering::Relaxed);
    let mut group = vec![leader];
    for &id in st.queue.iter() {
        if group.len() >= batch_max {
            break;
        }
        if id != leader && st.jobs[&id].spec.priority == class {
            group.push(id);
        }
    }
    st.queue.retain(|id| !group.contains(id));
    for id in st.queue.clone() {
        let rec = st.jobs.get_mut(&id).expect("queued job exists");
        rec.eff_prio += inner.cfg.aging;
    }
    for &id in &group {
        st.jobs.get_mut(&id).expect("grouped job exists").state = JobState::Running;
    }
    let gid = inner.group_seq.fetch_add(1, Ordering::Relaxed) + 1;
    if let Some(o) = inner.obs() {
        o.tracer.instant(
            "serve",
            "dispatch",
            &[
                ("group", gid.to_string()),
                ("size", group.len().to_string()),
                ("class", class.label().to_string()),
                ("queued", st.queue.len().to_string()),
            ],
        );
        o.metrics
            .counter_add("serve_dispatch_groups", &[("class", class.label())], 1);
    }
    let members = group
        .iter()
        .map(|id| id.0.to_string())
        .collect::<Vec<_>>()
        .join(",");
    inner.record_event(
        EventKind::GroupForm,
        None,
        "",
        &[
            ("group", gid.to_string()),
            ("class", class.label().to_string()),
            ("members", members),
        ],
    );
    inner.set_queue_gauges(st);
    Some((gid, group))
}

/// Should the executor running `group` hand its device back? Only when
/// interactive-level work is waiting, nobody is idle to take it, and every
/// group member is still below the eviction-immunity threshold.
fn should_evict(inner: &Inner, st: &State, group: &[Active]) -> bool {
    if st.idle > 0 || group.is_empty() {
        return false;
    }
    let interactive_waiting = st
        .queue
        .iter()
        .any(|id| st.jobs[id].eff_prio >= inner.cfg.interactive_base);
    interactive_waiting
        && group
            .iter()
            .all(|a| st.jobs[&a.id].eff_prio < inner.cfg.interactive_base)
}

fn executor_loop(inner: &Arc<Inner>) {
    loop {
        let (gid, group_ids) = {
            let mut st = inner.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(g) = select_group(inner, &mut st) {
                    break g;
                }
                st.idle += 1;
                inner.set_queue_gauges(&st);
                st = inner.work_cv.wait(st).unwrap();
                st.idle -= 1;
            }
        };
        run_group(inner, gid, group_ids);
    }
}

/// Build (or restore) every member of the group, then drive them in
/// round-robin slices to completion, eviction, or cancellation.
fn run_group(inner: &Arc<Inner>, gid: u64, group_ids: Vec<JobId>) {
    let mut group: Vec<Active> = Vec::with_capacity(group_ids.len());
    for id in group_ids {
        let (spec, snapshot, done) = {
            let st = inner.state.lock().unwrap();
            let rec = &st.jobs[&id];
            (rec.spec.clone(), rec.snapshot.clone(), rec.steps_done)
        };
        let resume_span = snapshot.as_ref().and_then(|_| {
            inner.obs().map(|o| {
                o.tracer.span_args(
                    "serve",
                    "resume",
                    &[("job", id.to_string()), ("from_step", done.to_string())],
                )
            })
        });
        let built = catch_unwind(AssertUnwindSafe(|| {
            let mut sim = spec.build(inner.cfg.cpu_threads_per_job);
            if let Some(bytes) = &snapshot {
                sim.restore(bytes)?;
            }
            Ok::<_, lbm_core::io::CheckpointError>(sim)
        }));
        drop(resume_span);
        match built {
            Ok(Ok(mut sim)) => {
                let mut ctx = None;
                if let Some(o) = inner.obs() {
                    if inner.cfg.trace_jobs {
                        sim.set_obs(o.clone());
                        let c = TraceCtx {
                            job_id: id.0,
                            tenant: spec.tenant.clone(),
                            group: gid,
                            slice: 0,
                        };
                        sim.set_trace_ctx(Some(c.clone()));
                        ctx = Some(c);
                    }
                }
                {
                    let mut st = inner.state.lock().unwrap();
                    let rec = st.jobs.get_mut(&id).expect("group job exists");
                    rec.snapshot = None;
                    // True the admission-time estimate up to the driver's
                    // actual lattice allocation (multi-device builds carry
                    // ghost columns the spec-side estimate cannot see). A
                    // true-up can land the tenant over its resident-byte
                    // limit; the job keeps running (its bytes are already
                    // resident) but the breach is counted and logged so
                    // the quota is never silently bypassed.
                    let actual = sim.resident_bytes();
                    let old = rec.charged_bytes;
                    if actual != old {
                        rec.charged_bytes = actual;
                        if let Some(breach) = st.ledger.recharge(&spec.tenant, old, actual) {
                            if let Some(o) = inner.obs() {
                                o.metrics.counter_add(
                                    "serve_quota_breaches",
                                    &[("tenant", &spec.tenant)],
                                    1,
                                );
                            }
                            inner.record_event(
                                EventKind::QuotaBreach,
                                Some(id),
                                &spec.tenant,
                                &[
                                    ("resident_bytes", breach.resident_bytes.to_string()),
                                    ("max_resident_bytes", breach.max_resident_bytes.to_string()),
                                ],
                            );
                        }
                    }
                    let rec = st.jobs.get_mut(&id).expect("group job exists");
                    if snapshot.is_some() {
                        if let Some(o) = inner.obs() {
                            o.metrics.counter_add(
                                "serve_resumes",
                                &[("class", rec.spec.priority.label())],
                                1,
                            );
                        }
                        inner.record_event(
                            EventKind::Resume,
                            Some(id),
                            &spec.tenant,
                            &[("from_step", done.to_string()), ("group", gid.to_string())],
                        );
                    }
                }
                group.push(Active {
                    id,
                    sim,
                    target: spec.steps,
                    done,
                    resilient: spec.resilient,
                    fault_plan: spec.fault_plan.clone(),
                    tenant: spec.tenant.clone(),
                    ctx,
                });
            }
            Ok(Err(_)) | Err(_) => {
                let mut st = inner.state.lock().unwrap();
                finalize(inner, &mut st, id, JobState::Failed, None);
            }
        }
    }

    while !group.is_empty() {
        // One round-robin pass: a slice for every member still running.
        let mut i = 0;
        while i < group.len() {
            let canceled = {
                let st = inner.state.lock().unwrap();
                st.jobs[&group[i].id].cancel
            };
            if canceled {
                let a = group.remove(i);
                let mut st = inner.state.lock().unwrap();
                finalize(inner, &mut st, a.id, JobState::Canceled, None);
                continue;
            }
            let a = &mut group[i];
            let slice_steps = inner.slice_steps.load(Ordering::Relaxed);
            let slice = slice_steps.min(a.target - a.done);
            if let Some(c) = &mut a.ctx {
                c.slice += 1;
                a.sim.set_trace_ctx(Some(c.clone()));
            }
            inner.record_event(
                EventKind::Slice,
                Some(a.id),
                &a.tenant,
                &[
                    ("steps", slice.to_string()),
                    ("from_step", a.done.to_string()),
                    ("group", gid.to_string()),
                ],
            );
            let _slice_span = inner.obs().map(|o| {
                o.tracer.span_args(
                    "serve",
                    "slice",
                    &[("job", a.id.to_string()), ("steps", slice.to_string())],
                )
            });
            // A panic escaping the solver unwinds past every open driver /
            // kernel span guard; the balance guard force-closes whatever
            // leaked so the per-thread span stack stays balanced (the
            // regression test asserts exact B/E parity after an induced
            // panic).
            let mut balance = inner.obs().map(|o| o.tracer.balance_guard());
            let stepped = catch_unwind(AssertUnwindSafe(|| {
                if a.resilient {
                    let rcfg = RecoveryConfig {
                        checkpoint_every: slice_steps,
                        max_rollbacks: 16,
                        fault_watch: a.fault_plan.clone(),
                        obs: inner.cfg.obs.clone(),
                        ctx: a.ctx.clone(),
                    };
                    run_with_recovery(&mut *a.sim, a.done + slice, &rcfg)
                        .map(|stats| stats.rollbacks)
                        .map_err(|e| e.to_string())
                } else {
                    for _ in 0..slice {
                        a.sim.step();
                    }
                    Ok(0)
                }
            }));
            if let Some(g) = balance.as_mut() {
                let repaired = g.repair();
                if repaired > 0 {
                    if let Some(o) = inner.obs() {
                        o.metrics
                            .counter_add("serve_span_repairs", &[], repaired as u64);
                    }
                }
            }
            drop(balance);
            drop(_slice_span);
            match stepped {
                Ok(Ok(rollbacks)) => {
                    a.done += slice;
                    let finished = a.done >= a.target;
                    if finished {
                        let mut a = group.remove(i);
                        a.sim.finish_monitor();
                        let checksum = a.sim.field_checksum();
                        let steps = a.sim.steps();
                        let mut st = inner.state.lock().unwrap();
                        {
                            let rec = st.jobs.get_mut(&a.id).expect("group job exists");
                            rec.steps_done = a.done;
                            rec.rollbacks += rollbacks;
                        }
                        let rec = &st.jobs[&a.id];
                        let result = JobResult {
                            id: a.id,
                            checksum,
                            steps,
                            latency_ms: rec.submitted_at.elapsed().as_secs_f64() * 1e3,
                            evictions: rec.evictions,
                            rollbacks: rec.rollbacks,
                        };
                        finalize(inner, &mut st, a.id, JobState::Completed, Some(result));
                    } else {
                        let mut st = inner.state.lock().unwrap();
                        let rec = st.jobs.get_mut(&a.id).expect("group job exists");
                        rec.steps_done = a.done;
                        rec.rollbacks += rollbacks;
                        i += 1;
                    }
                }
                Ok(Err(_)) | Err(_) => {
                    let a = group.remove(i);
                    let mut st = inner.state.lock().unwrap();
                    finalize(inner, &mut st, a.id, JobState::Failed, None);
                }
            }
        }

        // Preemption point: between rounds, hand the device back if
        // interactive work is starving.
        let evict_now = {
            let st = inner.state.lock().unwrap();
            should_evict(inner, &st, &group)
        };
        if evict_now {
            for mut a in group.drain(..) {
                let _evict_span = inner.obs().map(|o| {
                    o.tracer.span_args(
                        "serve",
                        "evict",
                        &[("job", a.id.to_string()), ("at_step", a.done.to_string())],
                    )
                });
                // Flush the physics monitor's final sample before the job
                // goes cold: an eviction may be the last time this solver
                // instance exists (a cancel can land while it waits), and
                // the monitor is observational, so flushing cannot perturb
                // the checkpointed trajectory.
                a.sim.finish_monitor();
                let snapshot = a.sim.checkpoint();
                let mut st = inner.state.lock().unwrap();
                // A cancel that raced the eviction wins: the job is
                // terminal-bound either way, and canceling here avoids
                // requeueing work nobody wants.
                if st.jobs[&a.id].cancel {
                    finalize(inner, &mut st, a.id, JobState::Canceled, None);
                    continue;
                }
                let rec = st.jobs.get_mut(&a.id).expect("group job exists");
                rec.snapshot = Some(snapshot);
                rec.state = JobState::Evicted;
                rec.evictions += 1;
                let class = rec.spec.priority.label();
                st.queue.push(a.id);
                if let Some(o) = inner.obs() {
                    o.metrics
                        .counter_add("serve_evictions", &[("class", class)], 1);
                }
                inner.record_event(
                    EventKind::Evict,
                    Some(a.id),
                    &a.tenant,
                    &[("at_step", a.done.to_string()), ("group", gid.to_string())],
                );
                inner.set_queue_gauges(&st);
                inner.work_cv.notify_one();
            }
        }
    }
}
