//! Job specifications: what a tenant asks the fleet to run.
//!
//! A [`JobSpec`] pins down a simulation completely — scenario, propagation
//! pattern, relaxation time, step target, device count — so the scheduler
//! can (re)build the solver at will: a fresh build plus a checkpoint
//! restore is *identical* to the evicted instance, and a solo run of the
//! same spec is the bitwise oracle for whatever the fleet produces.

use crate::job::SubmitError;
use gpu_sim::{DeviceSpec, FaultPlan};
use lbm_core::collision::Bgk;
use lbm_core::geometry::{Geometry, NodeType};
use lbm_core::Simulation;
use lbm_gpu::sparse::validate_sparse_geometry;
use lbm_gpu::{
    AaStSim, MrScheme, MrSim2D, MrSim3D, SparseMrSim2D, SparseMrSim3D, StSim, StSparseSim,
};
use lbm_lattice::{Lattice, D2Q9, D3Q19};
use lbm_multi::{
    MultiAaStSim, MultiMrSim2D, MultiMrSim3D, MultiSparseMrSim, MultiSparseStSim, MultiStSim,
};
use std::sync::Arc;

/// Scheduling class of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive: dispatched ahead of batch work and may preempt
    /// running batch groups.
    Interactive,
    /// Throughput work: runs whenever no interactive job is waiting; ages
    /// toward interactive priority so it can never starve.
    Batch,
}

impl Priority {
    /// Label value for metrics (`class` label).
    pub fn label(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
        }
    }
}

/// The flow problem a job simulates. Every scenario is periodic along `x`
/// with no-slip walls on every lateral face — the geometries every driver
/// in the workspace accepts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// 2D shear layer in a wall-bounded channel (D2Q9).
    Shear2D { nx: usize, ny: usize },
    /// 3D shear layer in a wall-bounded duct (D3Q19).
    Shear3D { nx: usize, ny: usize, nz: usize },
    /// 2D flow through a deterministic porous slab (D2Q9): the shear
    /// channel with `solid_pct`% of interior nodes turned to walls by a
    /// coordinate hash — same spec, same rock, bitwise. Porous scenarios
    /// require a sparse pattern: the service refuses to allocate a dense
    /// bounding box for a domain that is mostly rock.
    Porous2D { nx: usize, ny: usize, solid_pct: u8 },
}

/// Deterministic node classifier for [`Scenario::Porous2D`]: FNV-1a over
/// the coordinates, solid when `hash % 100 < solid_pct`.
fn porous_solid(x: usize, y: usize, solid_pct: u8) -> bool {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in (x as u64)
        .to_le_bytes()
        .into_iter()
        .chain((y as u64).to_le_bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h % 100 < solid_pct as u64
}

impl Scenario {
    /// Build the geometry (walls on lateral faces, periodic `x`).
    pub fn geometry(&self) -> Geometry {
        match *self {
            Scenario::Shear2D { nx, ny } => Geometry::walls_y_periodic_x(nx, ny),
            Scenario::Shear3D { nx, ny, nz } => {
                let mut g = Geometry::new(nx, ny, nz, [true, false, false]);
                for z in 0..nz {
                    for y in 0..ny {
                        for x in 0..nx {
                            if y == 0 || y == ny - 1 || z == 0 || z == nz - 1 {
                                g.set(x, y, z, NodeType::Wall);
                            }
                        }
                    }
                }
                g
            }
            Scenario::Porous2D { nx, ny, solid_pct } => {
                let mut g = Geometry::walls_y_periodic_x(nx, ny);
                for y in 1..ny - 1 {
                    for x in 0..nx {
                        if porous_solid(x, y, solid_pct) {
                            g.set(x, y, 0, NodeType::Wall);
                        }
                    }
                }
                g
            }
        }
    }

    /// Total lattice nodes (residency estimates multiply this by the
    /// pattern's per-node byte cost; sparse patterns use the geometry's
    /// exact fluid count instead).
    pub fn nodes(&self) -> usize {
        match *self {
            Scenario::Shear2D { nx, ny } | Scenario::Porous2D { nx, ny, .. } => nx * ny,
            Scenario::Shear3D { nx, ny, nz } => nx * ny * nz,
        }
    }

    fn min_extent(&self) -> usize {
        match *self {
            Scenario::Shear2D { nx, ny } | Scenario::Porous2D { nx, ny, .. } => nx.min(ny),
            Scenario::Shear3D { nx, ny, nz } => nx.min(ny).min(nz),
        }
    }

    fn nx(&self) -> usize {
        match *self {
            Scenario::Shear2D { nx, .. }
            | Scenario::Shear3D { nx, .. }
            | Scenario::Porous2D { nx, .. } => nx,
        }
    }
}

/// Propagation pattern (the paper's three kernels plus the in-place
/// single-lattice variants of each representation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Standard two-lattice distribution representation, BGK collision.
    St,
    /// Moment representation, projective regularization (MR-P).
    MrP,
    /// Moment representation, recursive regularization (MR-R).
    MrR,
    /// In-place AA-pattern ST: one resident lattice (`Q·8` bytes/node,
    /// half of [`Pattern::St`]), BGK collision.
    AaSt,
    /// In-place moment-twist MR-P: one parity-indexed moment lattice
    /// (`M·8` bytes/node, half of [`Pattern::MrP`]). Single-device only.
    MrTwist,
    /// Sparse (fluid-compacted, indirect-addressing) ST: state and link
    /// table are stored per *fluid* node, so residency scales with
    /// porosity instead of the bounding box.
    SparseSt,
    /// Sparse moment representation (projective regularization): `M·8`
    /// doubles of in-place moments plus the `Q·4`-byte link table per
    /// fluid node — the smallest residency of any pattern on porous
    /// domains.
    SparseMr,
}

impl Pattern {
    /// Label value for metrics and bench rows.
    pub fn label(self) -> &'static str {
        match self {
            Pattern::St => "st",
            Pattern::MrP => "mr-p",
            Pattern::MrR => "mr-r",
            Pattern::AaSt => "aa-st",
            Pattern::MrTwist => "mr-twist",
            Pattern::SparseSt => "sparse-st",
            Pattern::SparseMr => "sparse-mr",
        }
    }

    /// Whether this pattern uses fluid-compacted (sparse) storage.
    pub fn is_sparse(self) -> bool {
        matches!(self, Pattern::SparseSt | Pattern::SparseMr)
    }
}

/// A complete, validated request for one simulation.
#[derive(Clone)]
pub struct JobSpec {
    /// Owning tenant (quota accounting key).
    pub tenant: String,
    /// Scheduling class.
    pub priority: Priority,
    pub scenario: Scenario,
    pub pattern: Pattern,
    /// BGK/regularized relaxation time.
    pub tau: f64,
    /// Target timesteps.
    pub steps: u64,
    /// Devices to shard across (1 → single-device driver).
    pub devices: usize,
    /// Run under the checkpoint/rollback recovery loop (absorbs faults
    /// from `fault_plan`, if any, without perturbing the trajectory).
    pub resilient: bool,
    /// Optional injected-fault plan attached to the built solver.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Optional physics monitor attached to the built solver. Purely
    /// observational — it never touches the trajectory, so it is excluded
    /// from [`JobSpec::physics_key`].
    pub monitor: Option<obs::MonitorConfig>,
}

impl std::fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSpec")
            .field("tenant", &self.tenant)
            .field("priority", &self.priority)
            .field("scenario", &self.scenario)
            .field("pattern", &self.pattern)
            .field("tau", &self.tau)
            .field("steps", &self.steps)
            .field("devices", &self.devices)
            .field("resilient", &self.resilient)
            .field("fault_plan", &self.fault_plan.as_ref().map(|_| "<plan>"))
            .field("monitor", &self.monitor)
            .finish()
    }
}

impl JobSpec {
    /// A minimal valid interactive spec (builder starting point for tests
    /// and examples).
    pub fn shear_2d(tenant: &str, nx: usize, ny: usize, steps: u64) -> Self {
        JobSpec {
            tenant: tenant.to_string(),
            priority: Priority::Interactive,
            scenario: Scenario::Shear2D { nx, ny },
            pattern: Pattern::MrP,
            tau: 0.8,
            steps,
            devices: 1,
            resilient: false,
            fault_plan: None,
            monitor: None,
        }
    }

    /// Reject malformed specs before they reach the scheduler.
    pub fn validate(&self) -> Result<(), SubmitError> {
        let invalid = |why: String| Err(SubmitError::Invalid(why));
        if self.tenant.is_empty() {
            return invalid("tenant must be non-empty".into());
        }
        if !(self.tau > 0.5 && self.tau <= 2.0) {
            return invalid(format!("tau {} outside stable range (0.5, 2.0]", self.tau));
        }
        if self.steps == 0 {
            return invalid("steps must be >= 1".into());
        }
        if self.scenario.min_extent() < 4 {
            return invalid("every lattice extent must be >= 4".into());
        }
        if self.devices == 0 {
            return invalid("devices must be >= 1".into());
        }
        if self.devices > 1 && self.scenario.nx() / self.devices < 2 {
            return invalid(format!(
                "{} devices leave slabs narrower than 2 columns (nx = {})",
                self.devices,
                self.scenario.nx()
            ));
        }
        if self.pattern == Pattern::MrTwist && self.devices > 1 {
            return invalid(format!(
                "mr-twist is single-device only (requested {} devices): the \
                 parity-twisted moment lattice has no sharded driver",
                self.devices
            ));
        }
        if matches!(self.scenario, Scenario::Porous2D { .. }) && !self.pattern.is_sparse() {
            return invalid(format!(
                "porous scenarios require a sparse pattern (got {}): a dense \
                 bounding box would bill the tenant for rock",
                self.pattern.label()
            ));
        }
        if self.pattern.is_sparse() {
            // Run the sparse builders' own geometry checks at submit time,
            // so a bad spec is a synchronous SubmitError instead of a
            // poisoned executor: the typed build errors (unsupported node
            // types, no fluid nodes, link-table overflow) all surface here.
            let geom = self.scenario.geometry();
            if let Err(e) = validate_sparse_geometry(&geom) {
                return invalid(format!("sparse pattern rejected: {e}"));
            }
            let fluid = geom.fluid_count();
            if fluid == 0 {
                return invalid("sparse pattern rejected: domain has no fluid nodes".into());
            }
            let q = match self.scenario {
                Scenario::Shear3D { .. } => D3Q19::Q,
                _ => D2Q9::Q,
            };
            if let Err(e) = lbm_gpu::sparse::check_table_encoding(q, fluid) {
                return invalid(format!("sparse pattern rejected: {e}"));
            }
        }
        Ok(())
    }

    /// Admission-time estimate of the solver's resident lattice bytes —
    /// the roofline model's per-pattern footprint over the scenario's
    /// nodes. The scheduler charges this at submit and trues it up to
    /// [`Simulation::resident_bytes`] once the solver is built (ghost
    /// columns make multi-device builds slightly larger).
    pub fn estimated_resident_bytes(&self) -> usize {
        use gpu_sim::roofline::{
            footprint_aa_st, footprint_mr_double, footprint_mr_twist, footprint_sparse_mr,
            footprint_sparse_st, footprint_st,
        };
        let n = self.scenario.nodes();
        let (q, m) = match self.scenario {
            Scenario::Shear2D { .. } | Scenario::Porous2D { .. } => (D2Q9::Q, D2Q9::M),
            Scenario::Shear3D { .. } => (D3Q19::Q, D3Q19::M),
        };
        match self.pattern {
            Pattern::St => footprint_st(n, q),
            Pattern::MrP | Pattern::MrR => footprint_mr_double(n, m),
            Pattern::AaSt => footprint_aa_st(n, q),
            Pattern::MrTwist => footprint_mr_twist(n, m),
            // Sparse patterns are billed on the *fluid* count — the whole
            // point of the compacted storage is that rock is free.
            Pattern::SparseSt => footprint_sparse_st(self.scenario.geometry().fluid_count(), q),
            Pattern::SparseMr => footprint_sparse_mr(self.scenario.geometry().fluid_count(), m, q),
        }
    }

    /// Deterministic initial condition: a shear layer that is a pure
    /// function of global coordinates, so single- and multi-device builds
    /// start bitwise-identical.
    pub fn init(x: usize, y: usize, z: usize) -> (f64, [f64; 3]) {
        (
            1.0 + 0.01 * ((x + 2 * y + z) as f64 * 0.3).sin(),
            [
                0.02 * ((y + z) as f64 * 0.6).sin(),
                0.01 * (x as f64 * 0.4).cos(),
                0.0,
            ],
        )
    }

    /// Build the solver this spec describes, initialized and ready to
    /// step. `cpu_threads` is the per-job thread budget (the fleet default
    /// of 1 keeps each sim on its executor thread — see
    /// [`crate::scheduler::ServeConfig::cpu_threads_per_job`]). Rebuilding
    /// a spec and restoring a checkpoint reproduces an evicted instance
    /// exactly; the fault plan (shared `Arc`) re-attaches so its fired
    /// counters keep accumulating across evictions.
    pub fn build(&self, cpu_threads: usize) -> Box<dyn Simulation + Send> {
        // Shared tail of every arm: thread budget, fault plan, initial
        // condition, then erase the concrete type.
        macro_rules! finish {
            ($sim:expr) => {{
                let mut s = $sim.with_cpu_threads(cpu_threads);
                if let Some(plan) = &self.fault_plan {
                    s = s.with_fault_plan(plan.clone());
                }
                if let Some(cfg) = self.monitor {
                    s = s.with_monitor(cfg);
                }
                s.init_with(JobSpec::init);
                Box::new(s) as Box<dyn Simulation + Send>
            }};
        }
        let dev = DeviceSpec::v100();
        let geom = self.scenario.geometry();
        match (self.scenario, self.pattern, self.devices) {
            (Scenario::Shear2D { .. }, Pattern::St, 1) => {
                finish!(StSim::<D2Q9, _>::new(dev, geom, Bgk::new(self.tau)))
            }
            (Scenario::Shear2D { .. }, Pattern::St, n) => {
                finish!(MultiStSim::<D2Q9, _>::new(dev, geom, Bgk::new(self.tau), n))
            }
            (Scenario::Shear2D { .. }, Pattern::AaSt, 1) => {
                finish!(AaStSim::<D2Q9, _>::new(dev, geom, Bgk::new(self.tau)))
            }
            (Scenario::Shear2D { .. }, Pattern::AaSt, n) => {
                finish!(MultiAaStSim::<D2Q9, _>::new(
                    dev,
                    geom,
                    Bgk::new(self.tau),
                    n
                ))
            }
            (Scenario::Shear2D { .. }, Pattern::MrTwist, _) => {
                // validate() rejects devices > 1 for the twist pattern.
                finish!(
                    MrSim2D::<D2Q9>::new(dev, geom, MrScheme::projective(), self.tau).with_twist()
                )
            }
            (Scenario::Shear2D { .. } | Scenario::Porous2D { .. }, Pattern::SparseSt, 1) => {
                finish!(StSparseSim::<D2Q9, _>::new(dev, geom, Bgk::new(self.tau)))
            }
            (Scenario::Shear2D { .. } | Scenario::Porous2D { .. }, Pattern::SparseSt, n) => {
                finish!(MultiSparseStSim::<D2Q9, _>::new(
                    dev,
                    geom,
                    Bgk::new(self.tau),
                    n
                ))
            }
            (Scenario::Shear2D { .. } | Scenario::Porous2D { .. }, Pattern::SparseMr, 1) => {
                finish!(SparseMrSim2D::new(
                    dev,
                    geom,
                    MrScheme::projective(),
                    self.tau
                ))
            }
            (Scenario::Shear2D { .. } | Scenario::Porous2D { .. }, Pattern::SparseMr, n) => {
                finish!(MultiSparseMrSim::<D2Q9>::new(
                    dev,
                    geom,
                    MrScheme::projective(),
                    self.tau,
                    n
                ))
            }
            (Scenario::Shear2D { .. }, pat, n) => {
                let scheme = match pat {
                    Pattern::MrP => MrScheme::projective(),
                    _ => MrScheme::recursive::<D2Q9>(),
                };
                if n == 1 {
                    finish!(MrSim2D::<D2Q9>::new(dev, geom, scheme, self.tau))
                } else {
                    finish!(MultiMrSim2D::<D2Q9>::new(dev, geom, scheme, self.tau, n))
                }
            }
            (Scenario::Porous2D { .. }, ..) => {
                unreachable!("validate() rejects dense patterns on porous scenarios")
            }
            (Scenario::Shear3D { .. }, Pattern::St, 1) => {
                finish!(StSim::<D3Q19, _>::new(dev, geom, Bgk::new(self.tau)))
            }
            (Scenario::Shear3D { .. }, Pattern::St, n) => {
                finish!(MultiStSim::<D3Q19, _>::new(
                    dev,
                    geom,
                    Bgk::new(self.tau),
                    n
                ))
            }
            (Scenario::Shear3D { .. }, Pattern::AaSt, 1) => {
                finish!(AaStSim::<D3Q19, _>::new(dev, geom, Bgk::new(self.tau)))
            }
            (Scenario::Shear3D { .. }, Pattern::AaSt, n) => {
                finish!(MultiAaStSim::<D3Q19, _>::new(
                    dev,
                    geom,
                    Bgk::new(self.tau),
                    n
                ))
            }
            (Scenario::Shear3D { .. }, Pattern::MrTwist, _) => {
                finish!(
                    MrSim3D::<D3Q19>::new(dev, geom, MrScheme::projective(), self.tau).with_twist()
                )
            }
            (Scenario::Shear3D { .. }, Pattern::SparseSt, 1) => {
                finish!(StSparseSim::<D3Q19, _>::new(dev, geom, Bgk::new(self.tau)))
            }
            (Scenario::Shear3D { .. }, Pattern::SparseSt, n) => {
                finish!(MultiSparseStSim::<D3Q19, _>::new(
                    dev,
                    geom,
                    Bgk::new(self.tau),
                    n
                ))
            }
            (Scenario::Shear3D { .. }, Pattern::SparseMr, 1) => {
                finish!(SparseMrSim3D::new(
                    dev,
                    geom,
                    MrScheme::projective(),
                    self.tau
                ))
            }
            (Scenario::Shear3D { .. }, Pattern::SparseMr, n) => {
                finish!(MultiSparseMrSim::<D3Q19>::new(
                    dev,
                    geom,
                    MrScheme::projective(),
                    self.tau,
                    n
                ))
            }
            (Scenario::Shear3D { .. }, pat, n) => {
                let scheme = match pat {
                    Pattern::MrP => MrScheme::projective(),
                    _ => MrScheme::recursive::<D3Q19>(),
                };
                if n == 1 {
                    finish!(MrSim3D::<D3Q19>::new(dev, geom, scheme, self.tau))
                } else {
                    finish!(MultiMrSim3D::<D3Q19>::new(dev, geom, scheme, self.tau, n))
                }
            }
        }
    }

    /// Memoization key for the solo-checksum oracle: two specs with equal
    /// keys provably produce the same final field checksum (tenant,
    /// priority, and resilience do not touch the physics).
    pub fn physics_key(&self) -> (Scenario, Pattern, u64, u64, usize) {
        (
            self.scenario,
            self.pattern,
            self.tau.to_bits(),
            self.steps,
            self.devices,
        )
    }
}

/// Run `spec` to completion on a private solver and return the final FNV
/// field checksum — the bitwise oracle the fleet's result must match. The
/// oracle runs fault-free (resilient jobs are required to *recover to*
/// the clean trajectory, so the clean checksum is still the target).
pub fn solo_checksum(spec: &JobSpec) -> u64 {
    let clean = JobSpec {
        fault_plan: None,
        ..spec.clone()
    };
    let mut sim = clean.build(1);
    for _ in 0..spec.steps {
        sim.step();
    }
    sim.field_checksum()
}
