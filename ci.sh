#!/usr/bin/env bash
# Tier-1 gate: everything here must pass offline, with no network access
# and no dependencies outside the Rust toolchain (the workspace is
# std-only). Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test --workspace -q

echo "== reproduce smoke (multi-device bitwise + exact halo ratios)"
cargo run -p lbm-bench --release --bin reproduce -- smoke

echo "CI OK"
