#!/usr/bin/env bash
# Tier-1 gate: everything here must pass offline, with no network access
# and no dependencies outside the Rust toolchain (the workspace is
# std-only). Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test --workspace -q

echo "== reproduce smoke (multi-device bitwise + exact halo ratios + observability)"
# Smoke fails hard on physics-monitor violations (NaN, mass drift > 1e-10)
# and on any deviation from Table 2's byte-exact traffic ideals.
OBS_DIR=$(mktemp -d)
trap 'rm -rf "$OBS_DIR"' EXIT
cargo run -p lbm-bench --release --bin reproduce -- smoke \
  "--trace=$OBS_DIR/trace.json" "--metrics=$OBS_DIR/metrics.json"

echo "== validate emitted observability JSON (trace nesting, metrics, BENCH record)"
test -s BENCH_smoke.json
cargo run -p obs --release --bin obs-validate -- \
  "$OBS_DIR/trace.json" "$OBS_DIR/metrics.json" BENCH_smoke.json

echo "== aa (in-place single-lattice: bitwise vs two-lattice, byte-exact halved residency)"
# Runs AA-pattern ST and twist-MR against their two-lattice counterparts
# (bitwise FNV at even steps) and asserts resident bytes per node are
# exactly Q*8 / M*8 — half the two-lattice 2Q*8 / 2M*8 — published and
# read back through the metrics registry.
cargo run -p lbm-bench --release --bin reproduce -- aa
test -s BENCH_aa.json
cargo run -p obs --release --bin obs-validate -- BENCH_aa.json

echo "== sparse (fluid-compacted ST + MR: porosity-swept footprints, exact B/F, bitwise vs dense)"
# Sweeps 25/50/75% rock on the same box and asserts the resident footprint
# equals the roofline sparse model on the *fluid* count (published and read
# back through the metrics registry), measured B/F matches the
# indirect-addressing model (180/132 D2Q9, 380/236 D3Q19), the sparse
# drivers stay FNV-bitwise equal to the dense ones, and the sharded sparse
# halo tally is byte-exact.
cargo run -p lbm-bench --release --bin reproduce -- sparse
test -s BENCH_sparse.json
cargo run -p obs --release --bin obs-validate -- BENCH_sparse.json

echo "== bench wall-clock smoke (pooled executor + span paths, measured MFLUPS)"
# Asserts 1-thread vs 8-thread tallies are identical, then times the kernels;
# emits measured_mflups / speedup_vs_st rows into BENCH_bench.json.
cargo run -p lbm-bench --release --bin reproduce -- --section=bench --steps=small
test -s BENCH_bench.json

echo "== perf trend (MR-vs-ST speedups gated against the committed baseline)"
# Fails if any measured speedup_vs_st falls below 85% of perf_baseline.json;
# a missing baseline is seeded from the current run instead.
cargo run -p obs --release --bin obs-validate -- BENCH_bench.json
cargo run -p lbm-bench --release --bin perf_trend

echo "== resilience (fault injection + checkpoint/rollback, bitwise-verified resume)"
# Injects NaN writes, a launch abort, and transient link failures; asserts
# every recovered run matches its fault-free FNV checksum and that retried
# halo exchanges leave byte-identical link tallies.
cargo run -p lbm-bench --release --bin reproduce -- resilience
test -s BENCH_resilience.json
cargo run -p obs --release --bin obs-validate -- BENCH_resilience.json

echo "== serve smoke (multi-tenant fleet: hundreds of jobs, checksum-verified)"
# Replays a seeded arrival process through the lbm-serve scheduler and
# fails unless every job completes exactly once (zero lost/duplicated)
# with a checksum bitwise-equal to a solo run of the same spec.
cargo run -p lbm-bench --release --bin reproduce -- serve --jobs=400 --seed=7
test -s BENCH_serve.json
cargo run -p obs --release --bin obs-validate -- BENCH_serve.json

echo "== slo (observability plane: adaptive feedback controller vs static config)"
# Runs the same seeded workload through a static and an SLO-tuned fleet in
# interleaved waves; fails unless the controller beats the static config's
# pooled interactive p99, every span carries its job/tenant context, the
# event log replays to the scheduler's exact decision sequence, roofline
# gauges cover both device models, and all checksums stay solo-bitwise.
cargo run -p lbm-bench --release --bin reproduce -- slo --jobs=400 --seed=7 \
  "--events=$OBS_DIR/events.json"
test -s BENCH_slo.json
test -s "$OBS_DIR/events.json"
cargo run -p obs --release --bin obs-validate -- BENCH_slo.json "$OBS_DIR/events.json"

echo "CI OK"
