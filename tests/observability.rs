//! Integration checks on the observability layer: the Chrome trace export
//! must be loadable (well-formed, balanced, monotonic) even with concurrent
//! block execution underneath, the metrics registry must carry the
//! substrate's byte-exact tallies end to end, and the physics monitors must
//! catch real violations without perturbing the solvers.

use lbm_mr::obs::json;
use lbm_mr::prelude::*;

fn shear(_x: usize, y: usize, _z: usize) -> (f64, [f64; 3]) {
    (1.0, [0.04 * (y as f64 * 0.37).sin(), 0.0, 0.0])
}

/// Drive a sharded run (CPU worker threads per device, lockstep column
/// kernels, halo exchange) with the tracer attached, and return the hub.
fn traced_multi_run() -> std::sync::Arc<Obs> {
    let hub = Obs::shared();
    let geom = Geometry::walls_y_periodic_x(24, 10);
    let mut sim: MultiMrSim2D<D2Q9> =
        MultiMrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8, 2)
            .with_cpu_threads(4)
            .with_obs(hub.clone())
            .with_monitor(MonitorConfig {
                cadence: 1,
                ..Default::default()
            });
    sim.init_with(shear);
    sim.run(5);
    let mon = sim.monitor().unwrap();
    assert!(mon.is_ok(), "{:?}", mon.violations());
    hub
}

/// The exported trace parses as strict JSON and has the trace_event shape
/// Perfetto expects: a traceEvents array of B/E/i records.
#[test]
fn chrome_trace_is_well_formed_json() {
    let hub = traced_multi_run();
    let v = json::parse(&hub.tracer.to_chrome_json()).expect("trace must parse");
    let events = v.get("traceEvents").expect("traceEvents key").items();
    assert!(!events.is_empty());
    for e in events {
        let ph = e.get("ph").unwrap().as_str().unwrap();
        assert!(matches!(ph, "B" | "E" | "i"), "unexpected phase {ph}");
        assert!(e.get("ts").unwrap().as_f64().is_some());
        assert!(e.get("tid").unwrap().as_f64().is_some());
        if ph != "E" {
            assert!(e.get("name").unwrap().as_str().is_some());
        }
    }
}

/// Every `E` closes a `B` on the same thread, and nothing is left open:
/// the span stack discipline survives concurrent block execution.
#[test]
fn chrome_trace_spans_are_balanced_and_nested() {
    let hub = traced_multi_run();
    let v = json::parse(&hub.tracer.to_chrome_json()).unwrap();
    let mut open: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for e in v.get("traceEvents").unwrap().items() {
        let tid = e.get("tid").unwrap().as_f64().unwrap() as u64;
        match e.get("ph").unwrap().as_str().unwrap() {
            "B" => *open.entry(tid).or_insert(0) += 1,
            "E" => {
                let n = open.get_mut(&tid).expect("E without B");
                assert!(*n > 0, "E without matching B on tid {tid}");
                *n -= 1;
            }
            _ => {}
        }
    }
    assert!(open.values().all(|&n| n == 0), "unclosed spans: {open:?}");
}

/// Timestamps are globally monotonic (taken under the tracer's lock), so
/// the exported trace never renders out of order.
#[test]
fn chrome_trace_timestamps_are_monotonic() {
    let hub = traced_multi_run();
    let events = hub.tracer.events();
    assert!(events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
    // Driver-level nesting: the first step span opens before the first
    // kernel span, which closes before the step's end.
    let step_b = events
        .iter()
        .position(|e| e.ph == 'B' && e.name == "step")
        .unwrap();
    let kernel_b = events
        .iter()
        .position(|e| e.ph == 'B' && e.cat == "kernel")
        .unwrap();
    assert!(step_b < kernel_b, "step span must open before the kernel's");
}

/// Launch metrics flow from the executor through the registry with kernel
/// and device labels, and link counters carry the interconnect traffic.
#[test]
fn metrics_carry_launch_and_link_traffic() {
    let hub = traced_multi_run();
    let labels = [("kernel", "mr2d-p"), ("device", "NVIDIA V100")];
    let launches = hub.metrics.counter("launches", &labels).unwrap();
    assert!(launches > 0);
    assert!(hub.metrics.counter("bytes_read", &labels).unwrap() > 0);
    let link = [("link", "NVLink2[0->1]")];
    assert!(hub.metrics.counter("link_transfer_bytes", &link).unwrap() > 0);
    assert_eq!(
        hub.metrics.counter("link_transfer_count", &link),
        Some(5 * 2) // 5 steps × 2 cuts in each direction of the 2-shard ring
    );
    // Monitor gauges are published under the driver's pattern label.
    assert!(hub
        .metrics
        .gauge("monitor_mass", &[("pattern", "multi-mr2d")])
        .is_some());
}

/// The monitor flags NaN and mass drift, and a clean run stays clean.
#[test]
fn monitor_catches_violations() {
    let mut m = PhysicsMonitor::new(MonitorConfig {
        cadence: 1,
        ..Default::default()
    });
    m.observe(1, &[1.0, 1.0], &[[0.0; 3], [0.1, 0.0, 0.0]]);
    assert!(m.is_ok());
    m.observe(2, &[1.0, f64::NAN], &[[0.0; 3], [0.0; 3]]);
    assert!(!m.is_ok(), "NaN must be a violation");

    let mut drift = PhysicsMonitor::new(MonitorConfig {
        cadence: 1,
        ..Default::default()
    });
    drift.observe(1, &[1.0, 1.0], &[[0.0; 3]; 2]);
    drift.observe(2, &[1.0, 1.5], &[[0.0; 3]; 2]);
    assert!(!drift.is_ok(), "mass drift must be a violation");
}

/// Profiler lifecycle through the facade: reset clears, merge folds two
/// profilers' kernels and links into one.
#[test]
fn profiler_reset_and_merge_compose() {
    use lbm_mr::gpu::profiler::Profiler;
    let a = std::sync::Arc::new(Profiler::new());
    let geom = Geometry::walls_y_periodic_x(16, 8);
    let mut sim: MrSim2D<D2Q9> = MrSim2D::new(
        DeviceSpec::v100(),
        geom.clone(),
        MrScheme::projective(),
        0.8,
    )
    .with_profiler(a.clone());
    sim.run(2);
    let launches = a.get("mr2d-p").unwrap().launches;
    assert!(launches > 0);

    let b = Profiler::new();
    b.merge(&a);
    b.merge(&a);
    assert_eq!(b.get("mr2d-p").unwrap().launches, 2 * launches);
    // Merging preserves the per-item traffic (bytes and items both double).
    let bpi_a = a.get("mr2d-p").unwrap().dram_bytes_per_item();
    let bpi_b = b.get("mr2d-p").unwrap().dram_bytes_per_item();
    assert!((bpi_a - bpi_b).abs() < 1e-12);

    b.reset();
    assert!(b.get("mr2d-p").is_none());
    assert!(!b.report().contains("mr2d-p"));
}

/// The monitor does not perturb the solution: a monitored run's fields are
/// bitwise identical to an unmonitored one.
#[test]
fn monitor_is_nonintrusive() {
    let geom = Geometry::walls_y_periodic_x(16, 8);
    let mut plain: MrSim2D<D2Q9> = MrSim2D::new(
        DeviceSpec::v100(),
        geom.clone(),
        MrScheme::projective(),
        0.8,
    );
    plain.init_with(shear);
    plain.run(6);
    let mut monitored: MrSim2D<D2Q9> =
        MrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8).with_monitor(
            MonitorConfig {
                cadence: 2,
                ..Default::default()
            },
        );
    monitored.init_with(shear);
    monitored.run(6);
    assert_eq!(monitored.monitor().unwrap().samples().len(), 3);
    for (a, b) in plain
        .velocity_field()
        .iter()
        .zip(&monitored.velocity_field())
    {
        for k in 0..3 {
            assert_eq!(a[k], b[k], "monitoring changed the physics");
        }
    }
}
