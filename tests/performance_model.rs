//! Integration checks on the performance reproduction: the *shape* of the
//! paper's results — who wins, by roughly what factor, and where MR-R
//! separates from MR-P — must emerge from the measured traffic and the
//! calibrated bandwidth model.

use lbm_mr::prelude::*;

fn measured_bpf_2d(pattern: Pattern) -> f64 {
    let geom = Geometry::walls_y_periodic_x(64, 32);
    match pattern {
        Pattern::Standard => {
            let mut s: StSim<D2Q9, _> = StSim::new(DeviceSpec::v100(), geom, Bgk::new(0.8));
            s.run(2);
            s.measured_bpf()
        }
        Pattern::MomentProjective => {
            let mut s: MrSim2D<D2Q9> =
                MrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8);
            s.run(2);
            s.measured_bpf()
        }
        Pattern::MomentRecursive => {
            let mut s: MrSim2D<D2Q9> =
                MrSim2D::new(DeviceSpec::v100(), geom, MrScheme::recursive::<D2Q9>(), 0.8);
            s.run(2);
            s.measured_bpf()
        }
        // In-place storage halves residency, not traffic (see
        // `kernels::aa` / the twist lattice): same B/F as the class the
        // pattern calibrates against.
        Pattern::StandardAa => {
            let mut s: AaStSim<D2Q9, _> = AaStSim::new(DeviceSpec::v100(), geom, Bgk::new(0.8));
            s.run(2);
            s.measured_bpf()
        }
        Pattern::MomentTwist => {
            let mut s: MrSim2D<D2Q9> =
                MrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8).with_twist();
            s.run(2);
            s.measured_bpf()
        }
    }
}

/// The in-place patterns move the same bytes as their two-lattice
/// calibration class — Table 2's B/F is about traffic, which the single
/// lattice leaves untouched.
#[test]
fn in_place_variants_match_their_calibration_class_traffic() {
    let st = measured_bpf_2d(Pattern::Standard);
    let aa = measured_bpf_2d(Pattern::StandardAa);
    assert!((st - aa).abs() < 2.0, "ST {st} vs ST-AA {aa}");
    let mr = measured_bpf_2d(Pattern::MomentProjective);
    let tw = measured_bpf_2d(Pattern::MomentTwist);
    assert!((mr - tw).abs() < 1e-9, "MR-P {mr} vs MR-T {tw}");
}

/// MR-P and MR-R move the *same* bytes (Table 2: "their B/F requirements
/// are identical") — the recursive scheme's extra work is in-cache.
#[test]
fn mr_variants_have_identical_traffic() {
    let p = measured_bpf_2d(Pattern::MomentProjective);
    let r = measured_bpf_2d(Pattern::MomentRecursive);
    assert!((p - r).abs() < 1e-9, "MR-P {p} vs MR-R {r}");
}

/// The ST/MR traffic ratio matches Table 2 (144/96 = 1.5 in 2D).
#[test]
fn traffic_ratio_matches_table2() {
    let st = measured_bpf_2d(Pattern::Standard);
    let mr = measured_bpf_2d(Pattern::MomentProjective);
    let ratio = st / mr;
    assert!((ratio - 1.5).abs() < 0.05, "ST/MR B/F ratio {ratio}");
}

/// Figure 2/3 shape: MR-P beats ST on both devices and both lattices at
/// saturated sizes; MR-R ≈ MR-P in 2D but clearly trails in 3D; and the
/// V100 beats the MI100 for MR-P in 3D despite the lower peak bandwidth
/// (§4.3's headline observation).
#[test]
fn figure_shapes() {
    let n = 16_000_000;
    for dev in [DeviceSpec::v100(), DeviceSpec::mi100()] {
        for (dim, st_bpf, mr_bpf) in [(2usize, 144.0, 96.0), (3, 304.0, 160.0)] {
            let st = efficiency::modeled_mflups(&dev, Pattern::Standard, dim, st_bpf, n);
            let mrp = efficiency::modeled_mflups(&dev, Pattern::MomentProjective, dim, mr_bpf, n);
            let mrr = efficiency::modeled_mflups(&dev, Pattern::MomentRecursive, dim, mr_bpf, n);
            assert!(mrp > st, "{} {dim}D: MR-P must beat ST", dev.name);
            if dim == 2 {
                assert!(
                    (mrp - mrr) / mrp < 0.02,
                    "2D: MR-R within 2% of MR-P (paper: 'virtually identical')"
                );
            } else {
                assert!(
                    mrp - mrr > 500.0,
                    "3D: MR-R clearly trails MR-P ({} vs {})",
                    mrr,
                    mrp
                );
            }
        }
    }
    let v = DeviceSpec::v100();
    let m = DeviceSpec::mi100();
    let v_mrp3 = efficiency::modeled_mflups(&v, Pattern::MomentProjective, 3, 160.0, n);
    let m_mrp3 = efficiency::modeled_mflups(&m, Pattern::MomentProjective, 3, 160.0, n);
    assert!(
        v_mrp3 > m_mrp3,
        "V100 must outperform MI100 for 3D MR-P despite lower bandwidth"
    );
    // …while the MI100 wins everywhere in 2D.
    let v_mrp2 = efficiency::modeled_mflups(&v, Pattern::MomentProjective, 2, 96.0, n);
    let m_mrp2 = efficiency::modeled_mflups(&m, Pattern::MomentProjective, 2, 96.0, n);
    assert!(m_mrp2 > v_mrp2);
}

/// §5 speedups from *measured* 2D traffic: 1.32× on the V100 and 1.38× on
/// the MI100, within a few percent.
#[test]
fn conclusion_speedups_from_measurements() {
    let st_bpf = measured_bpf_2d(Pattern::Standard);
    let mr_bpf = measured_bpf_2d(Pattern::MomentProjective);
    let n = 16_000_000;
    let sp = |dev: &DeviceSpec| {
        efficiency::modeled_mflups(dev, Pattern::MomentProjective, 2, mr_bpf, n)
            / efficiency::modeled_mflups(dev, Pattern::Standard, 2, st_bpf, n)
    };
    let v = sp(&DeviceSpec::v100());
    let m = sp(&DeviceSpec::mi100());
    assert!((v - 1.32).abs() < 0.07, "V100 2D speedup {v}");
    assert!((m - 1.38).abs() < 0.07, "MI100 2D speedup {m}");
}

/// Memory-capacity check: on a 16 GB V100 the MR pattern fits problem sizes
/// the ST pattern cannot (the practical payoff of §4.1).
#[test]
fn mr_fits_larger_problems() {
    use lbm_mr::gpu::roofline::{footprint_mr_single, footprint_st};
    let dev = DeviceSpec::v100();
    let nodes = 60_000_000; // 60M D3Q19 nodes: 60M·304 B ≈ 18 GB in ST
    let st = footprint_st(nodes, 19);
    let mr = footprint_mr_single(nodes, 10, 1 << 20);
    assert!(!dev.fits_in_memory(st), "ST should exceed 16 GB: {st}");
    assert!(dev.fits_in_memory(mr), "MR should fit: {mr}");
}
