//! Cross-representation equivalence: the central correctness claim of the
//! paper is that the moment representation is a *lossless* compression of
//! the regularized simulation state. These tests run the full matrix of
//! (representation × collision scheme × dimension) on shared flows and
//! require agreement to near-roundoff.

use lbm_mr::prelude::*;

fn max_udiff(a: &[[f64; 3]], b: &[[f64; 3]]) -> f64 {
    a.iter()
        .zip(b)
        .flat_map(|(x, y)| (0..3).map(move |k| (x[k] - y[k]).abs()))
        .fold(0.0, f64::max)
}

fn max_rdiff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// 2D channel: reference solver vs substrate ST vs substrate MR, projective.
#[test]
fn three_way_agreement_projective_2d() {
    let geom = Geometry::channel_2d_poiseuille(24, 12, 0.05);
    let tau = 0.8;
    let steps = 30;

    let mut reference: Solver<D2Q9, _> = Solver::new(geom.clone(), Projective::new(tau));
    let mut st: StSim<D2Q9, _> = StSim::new(DeviceSpec::v100(), geom.clone(), Projective::new(tau));
    let mut mr: MrSim2D<D2Q9> =
        MrSim2D::new(DeviceSpec::mi100(), geom, MrScheme::projective(), tau);

    reference.run(steps);
    st.run(steps);
    mr.run(steps);

    let ur = reference.velocity_field();
    assert!(
        max_udiff(&ur, &st.velocity_field()) < 1e-12,
        "reference vs substrate ST"
    );
    assert!(
        max_udiff(&ur, &mr.velocity_field()) < 1e-9,
        "reference vs MR"
    );
    assert!(max_rdiff(&reference.density_field(), &mr.density_field()) < 1e-9);
}

/// 2D channel with recursive regularization.
#[test]
fn three_way_agreement_recursive_2d() {
    let geom = Geometry::channel_2d(24, 12, 0.04);
    let tau = 0.72;
    let steps = 30;

    let mut reference: Solver<D2Q9, _> = Solver::new(geom.clone(), Recursive::new::<D2Q9>(tau));
    let mut st: StSim<D2Q9, _> = StSim::new(
        DeviceSpec::v100(),
        geom.clone(),
        Recursive::new::<D2Q9>(tau),
    );
    let mut mr: MrSim2D<D2Q9> =
        MrSim2D::new(DeviceSpec::v100(), geom, MrScheme::recursive::<D2Q9>(), tau);

    reference.run(steps);
    st.run(steps);
    mr.run(steps);

    let ur = reference.velocity_field();
    assert!(max_udiff(&ur, &st.velocity_field()) < 1e-12);
    assert!(max_udiff(&ur, &mr.velocity_field()) < 1e-9);
}

/// 3D duct, both MR schemes against the reference.
#[test]
fn three_way_agreement_3d() {
    let geom = Geometry::channel_3d(16, 8, 8, 0.03);
    let tau = 0.75;
    let steps = 15;

    let mut ref_p: Solver<D3Q19, _> = Solver::new(geom.clone(), Projective::new(tau));
    let mut mr_p: MrSim3D<D3Q19> = MrSim3D::new(
        DeviceSpec::v100(),
        geom.clone(),
        MrScheme::projective(),
        tau,
    );
    ref_p.run(steps);
    mr_p.run(steps);
    assert!(max_udiff(&ref_p.velocity_field(), &mr_p.velocity_field()) < 1e-9);

    let mut ref_r: Solver<D3Q19, _> = Solver::new(geom.clone(), Recursive::new::<D3Q19>(tau));
    let mut mr_r: MrSim3D<D3Q19> = MrSim3D::new(
        DeviceSpec::mi100(),
        geom,
        MrScheme::recursive::<D3Q19>(),
        tau,
    );
    ref_r.run(steps);
    mr_r.run(steps);
    assert!(max_udiff(&ref_r.velocity_field(), &mr_r.velocity_field()) < 1e-9);
}

/// The stored moment state itself round-trips: pre-collision Π of MR equals
/// the reference's post-collision Π un-relaxed (eq. 10 inverted).
#[test]
fn stored_moments_relate_by_collision() {
    let geom = Geometry::walls_y_periodic_x(16, 8);
    let tau = 0.8;
    let init = |_x: usize, y: usize, _z: usize| (1.0, [0.03 * (y as f64 * 0.8).sin(), 0.0, 0.0]);

    let mut reference: Solver<D2Q9, _> = Solver::new(geom.clone(), Projective::new(tau));
    reference.init_with(init);
    let mut mr: MrSim2D<D2Q9> = MrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), tau);
    mr.init_with(init);

    reference.run(10);
    mr.run(10);

    let omega = 1.0 - 1.0 / tau;
    let g = reference.geom().clone();
    for y in 1..7 {
        for x in 0..16 {
            let m_ref = reference.moments_at(x, y, 0); // post-collision
            let m_mr = mr.moments_at(x, y, 0); // pre-collision
            assert!((m_ref.rho - m_mr.rho).abs() < 1e-12);
            // Π_post = Π_eq + ω (Π_pre − Π_eq)
            let pi_eq = lbm_mr::lattice::moments::Moments::pi_eq(m_mr.rho, m_mr.u, 2);
            for k in [0usize, 1, 3] {
                let want = pi_eq[k] + omega * (m_mr.pi[k] - pi_eq[k]);
                assert!(
                    (m_ref.pi[k] - want).abs() < 1e-12,
                    "({x},{y}) pi[{k}]: {} vs {}",
                    m_ref.pi[k],
                    want
                );
            }
        }
    }
    let _ = g;
}

/// Mass conservation across representations on a closed-ish domain.
#[test]
fn both_representations_conserve_mass() {
    let geom = Geometry::walls_y_periodic_x(16, 10);
    let init =
        |x: usize, y: usize, _z: usize| (1.0 + 0.02 * ((x * 2 + y) as f64).sin(), [0.0, 0.0, 0.0]);

    let mut st: StSim<D2Q9, _> = StSim::new(DeviceSpec::v100(), geom.clone(), Bgk::new(0.9));
    st.init_with(init);
    let m0: f64 = st.density_field().iter().sum();
    st.run(25);
    let m1: f64 = st.density_field().iter().sum();
    assert!((m0 - m1).abs() < 1e-9 * m0);

    let mut mr: MrSim2D<D2Q9> = MrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.9);
    mr.init_with(init);
    let m0: f64 = mr.density_field().iter().sum();
    mr.run(25);
    let m1: f64 = mr.density_field().iter().sum();
    assert!((m0 - m1).abs() < 1e-9 * m0);
}

/// Interior obstacles go through the same bounce-back path in both
/// representations: a cylinder in the channel must not break equivalence.
#[test]
fn obstacle_equivalence() {
    let geom = Geometry::walls_y_periodic_x(24, 16).with_cylinder(8.0, 7.5, 3.0);
    let init = |_x: usize, y: usize, _z: usize| {
        (
            1.0,
            [0.03 * analytic::poiseuille_profile(y, 16, 1.0), 0.0, 0.0],
        )
    };
    let tau = 0.8;

    let mut reference: Solver<D2Q9, _> = Solver::new(geom.clone(), Projective::new(tau));
    reference.init_with(init);
    let mut mr: MrSim2D<D2Q9> = MrSim2D::new(
        DeviceSpec::v100(),
        geom.clone(),
        MrScheme::projective(),
        tau,
    );
    mr.init_with(init);
    let mut st: StSim<D2Q9, _> = StSim::new(DeviceSpec::v100(), geom, Projective::new(tau));
    st.init_with(init);

    reference.run(20);
    mr.run(20);
    st.run(20);

    let ur = reference.velocity_field();
    assert!(
        max_udiff(&ur, &mr.velocity_field()) < 1e-12,
        "MR with obstacle"
    );
    assert!(
        max_udiff(&ur, &st.velocity_field()) < 1e-12,
        "ST with obstacle"
    );
    // The flow actually feels the obstacle: velocity right behind it is
    // reduced vs the unobstructed profile.
    let g = reference.geom();
    let behind = ur[g.idx(12, 7, 0)][0];
    let free = ur[g.idx(20, 7, 0)][0];
    assert!(behind < free, "obstacle left no wake ({behind} vs {free})");
}

/// Momentum-exchange force: for a plane channel driven by a moving lid the
/// total force on the lid balances the wall drag at steady state; for a
/// symmetric obstacle the transverse force vanishes.
#[test]
fn momentum_exchange_force_sanity() {
    // Couette flow: lid at the top, wall at the bottom.
    let n = 16;
    let u_lid = 0.05;
    let mut geom = Geometry::walls_y_periodic_x(n, n);
    for x in 0..n {
        geom.set(x, n - 1, 0, NodeType::MovingWall([u_lid, 0.0, 0.0]));
    }
    let mut s: Solver<D2Q9, _> = Solver::new(geom, Bgk::new(0.8));
    s.run(3000);
    let lid = s.force_on(|_x, y, _z| y == n - 1);
    let floor = s.force_on(|_x, y, _z| y == 0);
    // The lid drags the fluid forward (reaction on the lid is backward);
    // the floor resists: forces balance in steady Couette flow.
    assert!(
        (lid[0] + floor[0]).abs() < 0.02 * lid[0].abs().max(floor[0].abs()),
        "unbalanced: lid {} floor {}",
        lid[0],
        floor[0]
    );
    // Analytic wall shear: τ_w = ρ ν u_lid / H per unit length, total n·τ_w.
    let nu = units::nu_from_tau(0.8);
    let expect = n as f64 * nu * u_lid / (n as f64 - 2.0);
    assert!(
        (floor[0].abs() - expect).abs() < 0.15 * expect,
        "floor drag {} vs analytic {}",
        floor[0].abs(),
        expect
    );
}

/// Sharding across simulated devices is invisible to the physics: every
/// multi-device driver must reproduce its single-device counterpart
/// *bitwise* (ghost columns carry exact doubles, per-node arithmetic is
/// decomposition-independent), which trivially satisfies the paper-level
/// 1e-12 relative criterion too.
#[test]
fn multi_device_matches_single_2d() {
    let tau = 0.8;
    let steps = 12;
    let init = |x: usize, y: usize, _z: usize| {
        (
            1.0 + 0.01 * ((x as f64 * 0.4 + y as f64 * 0.7).sin()),
            [
                0.02 * (y as f64 * 0.5).sin(),
                0.01 * (x as f64 * 0.3).cos(),
                0.0,
            ],
        )
    };
    let geom = Geometry::walls_y_periodic_x(20, 10);

    for n in [2usize, 3] {
        // ST, distribution-space halos.
        let mut single: StSim<D2Q9, _> =
            StSim::new(DeviceSpec::v100(), geom.clone(), Projective::new(tau));
        single.init_with(init);
        single.run(steps);
        let mut multi: MultiStSim<D2Q9, _> =
            MultiStSim::new(DeviceSpec::v100(), geom.clone(), Projective::new(tau), n);
        multi.init_with(init);
        multi.run(steps);
        assert_eq!(single.velocity_field(), multi.velocity_field(), "ST N={n}");
        assert_eq!(single.density_field(), multi.density_field(), "ST N={n}");

        // MR, moment-space halos, both regularization schemes.
        for (label, mk) in [
            ("MR-P", MrScheme::projective as fn() -> MrScheme),
            ("MR-R", MrScheme::recursive::<D2Q9>),
        ] {
            let mut single: MrSim2D<D2Q9> =
                MrSim2D::new(DeviceSpec::v100(), geom.clone(), mk(), tau);
            single.init_with(init);
            single.run(steps);
            let mut multi: MultiMrSim2D<D2Q9> =
                MultiMrSim2D::new(DeviceSpec::v100(), geom.clone(), mk(), tau, n);
            multi.init_with(init);
            multi.run(steps);
            assert_eq!(
                single.velocity_field(),
                multi.velocity_field(),
                "{label} N={n}"
            );
            assert_eq!(
                single.density_field(),
                multi.density_field(),
                "{label} N={n}"
            );
            assert!(max_udiff(&single.velocity_field(), &multi.velocity_field()) < 1e-12);
        }
    }
}

/// Periodic-x duct with walls on the four lateral faces: the shared 3D
/// geometry all three representations can run sharded.
fn duct(nx: usize, ny: usize, nz: usize) -> Geometry {
    let mut g = Geometry::new(nx, ny, nz, [true, false, false]);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                if y == 0 || y == ny - 1 || z == 0 || z == nz - 1 {
                    g.set(x, y, z, NodeType::Wall);
                }
            }
        }
    }
    g
}

#[test]
fn multi_device_matches_single_3d() {
    let tau = 0.75;
    let steps = 8;
    let n = 2;
    let init = |x: usize, y: usize, z: usize| {
        (
            1.0 + 0.01 * ((x + 2 * z) as f64 * 0.3).sin(),
            [
                0.02 * (y as f64 * 0.6).sin(),
                0.0,
                0.01 * (z as f64 * 0.5).cos(),
            ],
        )
    };
    let geom = duct(12, 7, 7);

    let mut single: StSim<D3Q19, _> =
        StSim::new(DeviceSpec::v100(), geom.clone(), Projective::new(tau));
    single.init_with(init);
    single.run(steps);
    let mut multi: MultiStSim<D3Q19, _> =
        MultiStSim::new(DeviceSpec::v100(), geom.clone(), Projective::new(tau), n);
    multi.init_with(init);
    multi.run(steps);
    assert_eq!(single.velocity_field(), multi.velocity_field(), "ST 3D");

    for (label, mk) in [
        ("MR-P", MrScheme::projective as fn() -> MrScheme),
        ("MR-R", MrScheme::recursive::<D3Q19>),
    ] {
        let mut single: MrSim3D<D3Q19> = MrSim3D::new(DeviceSpec::v100(), geom.clone(), mk(), tau);
        single.init_with(init);
        single.run(steps);
        let mut multi: MultiMrSim3D<D3Q19> =
            MultiMrSim3D::new(DeviceSpec::v100(), geom.clone(), mk(), tau, n);
        multi.init_with(init);
        multi.run(steps);
        assert_eq!(
            single.velocity_field(),
            multi.velocity_field(),
            "{label} 3D"
        );
        assert!(max_udiff(&single.velocity_field(), &multi.velocity_field()) < 1e-12);
    }
}

/// Table 2 on the wire: on identical geometry the MR halo traffic is
/// exactly `M/Q` of the ST halo traffic — byte-for-byte, not approximately.
#[test]
fn moment_space_halo_bytes_are_m_over_q() {
    let steps = 5;

    // D2Q9: M/Q = 6/9 (the 96/144 B/F ratio of Table 2).
    let geom = Geometry::walls_y_periodic_x(16, 9);
    let mut st: MultiStSim<D2Q9, _> =
        MultiStSim::new(DeviceSpec::v100(), geom.clone(), Bgk::new(0.9), 2);
    st.run(steps);
    let mut mr: MultiMrSim2D<D2Q9> =
        MultiMrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.9, 2);
    mr.run(steps);
    assert_eq!(st.halo_bytes_per_step() * 6, mr.halo_bytes_per_step() * 9);
    let stb = st.interconnect().total_link_bytes();
    let mrb = mr.interconnect().total_link_bytes();
    assert!(stb > 0 && mrb > 0);
    assert_eq!(stb * 6, mrb * 9, "D2Q9 accumulated link bytes must be 9:6");

    // D3Q19: M/Q = 10/19 (the 160/304 ratio).
    let geom = duct(10, 6, 6);
    let mut st: MultiStSim<D3Q19, _> =
        MultiStSim::new(DeviceSpec::mi100(), geom.clone(), Bgk::new(0.9), 2);
    st.run(steps);
    let mut mr: MultiMrSim3D<D3Q19> =
        MultiMrSim3D::new(DeviceSpec::mi100(), geom, MrScheme::projective(), 0.9, 2);
    mr.run(steps);
    assert_eq!(st.halo_bytes_per_step() * 10, mr.halo_bytes_per_step() * 19);
    assert_eq!(
        st.interconnect().total_link_bytes() * 10,
        mr.interconnect().total_link_bytes() * 19,
        "D3Q19 accumulated link bytes must be 19:10"
    );
}

/// Larger tile heights and column widths leave the MR trajectory unchanged
/// (pure implementation parameters).
#[test]
fn mr_config_invariance() {
    let geom = Geometry::walls_y_periodic_x(24, 12);
    let init = |x: usize, y: usize, _z: usize| {
        (
            1.0,
            [
                0.02 * (y as f64 * 0.5).sin(),
                0.01 * (x as f64 * 0.3).cos(),
                0.0,
            ],
        )
    };
    let run = |col_w: usize, tile_h: usize, shift: usize| {
        let mut mr: MrSim2D<D2Q9> = MrSim2D::with_config(
            DeviceSpec::v100(),
            Geometry::walls_y_periodic_x(24, 12),
            MrScheme::projective(),
            0.8,
            col_w,
            tile_h,
            shift,
        );
        mr.init_with(init);
        mr.run(12);
        mr.velocity_field()
    };
    let base = run(8, 1, 1);
    for (w, h, s) in [(24, 1, 1), (4, 2, 2), (12, 3, 4), (8, 1, 0)] {
        let u = run(w, h, s);
        assert!(
            max_udiff(&base, &u) < 1e-13,
            "config ({w},{h},{s}) changed the trajectory"
        );
    }
    let _ = geom;
}
