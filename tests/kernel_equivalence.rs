//! Bitwise equivalence of the chunk-vectorized SoA collision kernels
//! against the scalar per-node reference path.
//!
//! Every driver exposes `with_scalar_kernels()`, which forces the original
//! per-node `Moments::unpack` → collide → `f_from_moments` chain (MR) or
//! per-node `Collision::collide` (ST). The default path processes segments
//! in `LANES`-node chunks over flat lane arrays (see
//! `lbm_core::kernels`). The two must agree to the last bit: the lane
//! kernels replicate the scalar operation trees exactly, including
//! association order and division sites. These tests drive all six
//! drivers on both device models through geometries with odd segment
//! lengths (`len % LANES != 0`), moving walls, interior obstacles, and
//! inlet/outlet boundaries, and compare FNV field checksums.

use lbm_mr::prelude::*;

/// A smooth, non-trivial initial field (same shape the multi-device
/// bitwise tests use): exercises every arithmetic path from step one.
fn shear_init(x: usize, y: usize, z: usize) -> (f64, [f64; 3]) {
    (
        1.0 + 0.01 * ((x + 2 * y + 3 * z) as f64 * 0.3).sin(),
        [
            0.03 * ((y + z) as f64 * 0.6).sin(),
            0.01 * (x as f64 * 0.4).cos(),
            0.0,
        ],
    )
}

fn devices() -> [DeviceSpec; 2] {
    [DeviceSpec::v100(), DeviceSpec::mi100()]
}

/// ST with the vectorized BGK SoA kernel vs the scalar per-node loop, on
/// a lid-driven cavity (moving wall, odd 13-node rows).
#[test]
fn st_bgk_vectorized_matches_scalar() {
    for dev in devices() {
        let geom = Geometry::cavity_2d(13, 0.08);
        let mut fast: StSim<D2Q9, _> = StSim::new(dev.clone(), geom.clone(), Bgk::new(0.8));
        let mut slow: StSim<D2Q9, _> = StSim::new(dev, geom, Bgk::new(0.8)).with_scalar_kernels();
        fast.init_with(shear_init);
        slow.init_with(shear_init);
        fast.run(6);
        slow.run(6);
        assert_eq!(
            fast.field_checksum(),
            slow.field_checksum(),
            "ST vectorized BGK diverged from scalar"
        );
    }
}

/// ST with a non-BGK operator falls back to the per-node `collide_soa`
/// default; the chunk staging itself must still be bit-transparent.
#[test]
fn st_projective_staging_is_transparent() {
    let geom = Geometry::channel_2d(20, 10, 0.04);
    let mut fast: StSim<D2Q9, _> =
        StSim::new(DeviceSpec::v100(), geom.clone(), Projective::new(0.8));
    let mut slow: StSim<D2Q9, _> =
        StSim::new(DeviceSpec::v100(), geom, Projective::new(0.8)).with_scalar_kernels();
    fast.init_with(shear_init);
    slow.init_with(shear_init);
    fast.run(6);
    slow.run(6);
    assert_eq!(fast.field_checksum(), slow.field_checksum());
}

/// 2D MR (both regularization flavors) on a cavity with a moving lid and
/// odd row lengths — the chunked unpack+collide+reconstruct with tail
/// replication must match the scalar chain bitwise.
#[test]
fn mr2d_vectorized_matches_scalar() {
    for dev in devices() {
        for scheme in [MrScheme::projective(), MrScheme::recursive::<D2Q9>()] {
            let geom = Geometry::cavity_2d(13, 0.08);
            let mut fast: MrSim2D<D2Q9> =
                MrSim2D::new(dev.clone(), geom.clone(), scheme.clone(), 0.8);
            let mut slow: MrSim2D<D2Q9> =
                MrSim2D::new(dev.clone(), geom, scheme, 0.8).with_scalar_kernels();
            fast.init_with(shear_init);
            slow.init_with(shear_init);
            fast.run(6);
            slow.run(6);
            assert_eq!(
                fast.field_checksum(),
                slow.field_checksum(),
                "MR 2D vectorized diverged from scalar"
            );
        }
    }
}

/// 2D MR around an interior obstacle: runs split at the cylinder, so the
/// kernel sees many short odd-length segments and boundary-heavy scatter.
#[test]
fn mr2d_obstacle_segments_match() {
    let geom = Geometry::walls_y_periodic_x(24, 9).with_cylinder(7.5, 4.5, 2.2);
    for scheme in [MrScheme::projective(), MrScheme::recursive::<D2Q9>()] {
        let mut fast: MrSim2D<D2Q9> =
            MrSim2D::new(DeviceSpec::v100(), geom.clone(), scheme.clone(), 0.7);
        let mut slow: MrSim2D<D2Q9> =
            MrSim2D::new(DeviceSpec::v100(), geom.clone(), scheme, 0.7).with_scalar_kernels();
        fast.init_with(shear_init);
        slow.init_with(shear_init);
        fast.run(6);
        slow.run(6);
        assert_eq!(fast.field_checksum(), slow.field_checksum());
    }
}

/// 3D MR on the paper's duct (inlet/outlet + FD boundary rebuild), both
/// flavors, both devices; 12-node rows exercise the 4-lane tail.
#[test]
fn mr3d_vectorized_matches_scalar() {
    for dev in devices() {
        for scheme in [MrScheme::projective(), MrScheme::recursive::<D3Q19>()] {
            let geom = Geometry::channel_3d(12, 6, 6, 0.04);
            let mut fast: MrSim3D<D3Q19> =
                MrSim3D::new(dev.clone(), geom.clone(), scheme.clone(), 0.8);
            let mut slow: MrSim3D<D3Q19> =
                MrSim3D::new(dev.clone(), geom, scheme, 0.8).with_scalar_kernels();
            fast.init_with(shear_init);
            slow.init_with(shear_init);
            fast.run(4);
            slow.run(4);
            assert_eq!(
                fast.field_checksum(),
                slow.field_checksum(),
                "MR 3D vectorized diverged from scalar"
            );
        }
    }
}

/// Sharded ST: the vectorized kernels run inside each shard's strip and
/// interior launches; checksums must match the scalar shards.
#[test]
fn multi_st_vectorized_matches_scalar() {
    let geom = Geometry::channel_2d(20, 10, 0.04);
    let mut fast: MultiStSim<D2Q9, _> =
        MultiStSim::new(DeviceSpec::v100(), geom.clone(), Bgk::new(0.8), 2);
    let mut slow: MultiStSim<D2Q9, _> =
        MultiStSim::new(DeviceSpec::v100(), geom, Bgk::new(0.8), 2).with_scalar_kernels();
    fast.init_with(shear_init);
    slow.init_with(shear_init);
    fast.run(6);
    slow.run(6);
    assert_eq!(fast.field_checksum(), slow.field_checksum());
}

/// Sharded 2D MR, both flavors.
#[test]
fn multi_mr2d_vectorized_matches_scalar() {
    let geom = Geometry::walls_y_periodic_x(24, 9);
    for scheme in [MrScheme::projective(), MrScheme::recursive::<D2Q9>()] {
        let mut fast: MultiMrSim2D<D2Q9> =
            MultiMrSim2D::new(DeviceSpec::mi100(), geom.clone(), scheme.clone(), 0.8, 2);
        let mut slow: MultiMrSim2D<D2Q9> =
            MultiMrSim2D::new(DeviceSpec::mi100(), geom.clone(), scheme, 0.8, 2)
                .with_scalar_kernels();
        fast.init_with(shear_init);
        slow.init_with(shear_init);
        fast.run(6);
        slow.run(6);
        assert_eq!(fast.field_checksum(), slow.field_checksum());
    }
}

/// PR 9 tentpole contract, swept at the workspace level: the in-place
/// AA-pattern driver is FNV-bitwise equal to the two-lattice ST driver at
/// *every even* step count — on both device models, through an odd step
/// total, and identically under pooled 1-thread and 8-thread executors
/// (which must also agree with each other at odd steps, where the AA
/// lattice is mid-cycle and legitimately differs from ST).
#[test]
fn aa_matches_two_lattice_fnv_sweep_2d() {
    for dev in devices() {
        // Lid-driven cavity: moving-wall gains on the in-place path.
        let geom = Geometry::cavity_2d(13, 0.08);
        let mut st: StSim<D2Q9, _> = StSim::new(dev.clone(), geom.clone(), Bgk::new(0.8));
        let mut aa1: AaStSim<D2Q9, _> =
            AaStSim::new(dev.clone(), geom.clone(), Bgk::new(0.8)).with_cpu_threads(1);
        let mut aa8: AaStSim<D2Q9, _> = AaStSim::new(dev, geom, Bgk::new(0.8))
            .with_cpu_threads(8)
            .with_parallel_threshold(0);
        st.init_with(shear_init);
        aa1.init_with(shear_init);
        aa8.init_with(shear_init);
        for step in 1..=7u64 {
            st.step();
            aa1.step();
            aa8.step();
            assert_eq!(
                aa1.field_checksum(),
                aa8.field_checksum(),
                "pooled AA executors diverged at step {step}"
            );
            if step % 2 == 0 {
                assert_eq!(
                    aa1.field_checksum(),
                    st.field_checksum(),
                    "AA diverged from the two-lattice driver at even step {step}"
                );
            }
        }
    }
}

/// Same AA sweep in 3D (walled duct, periodic x — AA rejects
/// inlet/outlet) with the projective operator for the non-BGK collide
/// path.
#[test]
fn aa_matches_two_lattice_fnv_sweep_3d() {
    for dev in devices() {
        let mut geom = Geometry::new(10, 6, 6, [true, false, false]);
        for z in 0..6 {
            for y in 0..6 {
                for x in 0..10 {
                    if y == 0 || y == 5 || z == 0 || z == 5 {
                        geom.set(x, y, z, NodeType::Wall);
                    }
                }
            }
        }
        let mut st: StSim<D3Q19, _> = StSim::new(dev.clone(), geom.clone(), Projective::new(0.7));
        let mut aa1: AaStSim<D3Q19, _> =
            AaStSim::new(dev.clone(), geom.clone(), Projective::new(0.7)).with_cpu_threads(1);
        let mut aa8: AaStSim<D3Q19, _> = AaStSim::new(dev, geom, Projective::new(0.7))
            .with_cpu_threads(8)
            .with_parallel_threshold(0);
        st.init_with(shear_init);
        aa1.init_with(shear_init);
        aa8.init_with(shear_init);
        for step in 1..=5u64 {
            st.step();
            aa1.step();
            aa8.step();
            assert_eq!(aa1.field_checksum(), aa8.field_checksum());
            if step % 2 == 0 {
                assert_eq!(aa1.field_checksum(), st.field_checksum());
            }
        }
    }
}

/// The moment-twist contract is stronger: parity-indexed plane storage
/// changes where moments live, never their values, so the twist driver is
/// FNV-bitwise equal to the default MR driver at *every* step — 2D and
/// 3D (with inlet/outlet boundaries), both devices, pooled 1/8-thread.
#[test]
fn mr_twist_matches_default_fnv_sweep() {
    for dev in devices() {
        let geom2 = Geometry::cavity_2d(13, 0.08);
        let mut plain2: MrSim2D<D2Q9> =
            MrSim2D::new(dev.clone(), geom2.clone(), MrScheme::projective(), 0.8);
        let mut tw1: MrSim2D<D2Q9> =
            MrSim2D::new(dev.clone(), geom2.clone(), MrScheme::projective(), 0.8)
                .with_cpu_threads(1)
                .with_twist();
        let mut tw8: MrSim2D<D2Q9> = MrSim2D::new(dev.clone(), geom2, MrScheme::projective(), 0.8)
            .with_cpu_threads(8)
            .with_twist();
        plain2.init_with(shear_init);
        tw1.init_with(shear_init);
        tw8.init_with(shear_init);
        for step in 1..=7u64 {
            plain2.step();
            tw1.step();
            tw8.step();
            assert_eq!(tw1.field_checksum(), tw8.field_checksum());
            assert_eq!(
                tw1.field_checksum(),
                plain2.field_checksum(),
                "2D twist diverged at step {step}"
            );
        }

        let geom3 = Geometry::channel_3d(12, 6, 6, 0.04);
        let mut plain3: MrSim3D<D3Q19> = MrSim3D::new(
            dev.clone(),
            geom3.clone(),
            MrScheme::recursive::<D3Q19>(),
            0.8,
        );
        let mut tw3: MrSim3D<D3Q19> =
            MrSim3D::new(dev.clone(), geom3, MrScheme::recursive::<D3Q19>(), 0.8)
                .with_cpu_threads(8)
                .with_twist();
        plain3.init_with(shear_init);
        tw3.init_with(shear_init);
        for step in 1..=5u64 {
            plain3.step();
            tw3.step();
            assert_eq!(
                tw3.field_checksum(),
                plain3.field_checksum(),
                "3D twist diverged at step {step}"
            );
        }
    }
}

/// Sharded 3D MR, both flavors.
#[test]
fn multi_mr3d_vectorized_matches_scalar() {
    let geom = Geometry::channel_3d(16, 6, 6, 0.04);
    for scheme in [MrScheme::projective(), MrScheme::recursive::<D3Q19>()] {
        let mut fast: MultiMrSim3D<D3Q19> =
            MultiMrSim3D::new(DeviceSpec::v100(), geom.clone(), scheme.clone(), 0.8, 2);
        let mut slow: MultiMrSim3D<D3Q19> =
            MultiMrSim3D::new(DeviceSpec::v100(), geom.clone(), scheme, 0.8, 2)
                .with_scalar_kernels();
        fast.init_with(shear_init);
        slow.init_with(shear_init);
        fast.run(4);
        slow.run(4);
        assert_eq!(fast.field_checksum(), slow.field_checksum());
    }
}

/// PR 10 tentpole contract, swept at the workspace level: the
/// fluid-compacted sparse ST driver is FNV-bitwise equal to the dense
/// two-lattice ST driver at *every* step on an obstacle-laden domain —
/// the pull-form link table reproduces the dense streaming exactly — on
/// both device models, identically under pooled 1-thread and 8-thread
/// executors.
#[test]
fn sparse_st_matches_dense_fnv_sweep() {
    for dev in devices() {
        let geom = Geometry::walls_y_periodic_x(24, 9).with_cylinder(7.5, 4.5, 2.2);
        let mut dense: StSim<D2Q9, _> = StSim::new(dev.clone(), geom.clone(), Bgk::new(0.8));
        let mut sp1: StSparseSim<D2Q9, _> =
            StSparseSim::new(dev.clone(), geom.clone(), Bgk::new(0.8)).with_cpu_threads(1);
        let mut sp8: StSparseSim<D2Q9, _> = StSparseSim::new(dev, geom, Bgk::new(0.8))
            .with_cpu_threads(8)
            .with_parallel_threshold(0);
        dense.init_with(shear_init);
        sp1.init_with(shear_init);
        sp8.init_with(shear_init);
        for step in 1..=7u64 {
            dense.step();
            sp1.step();
            sp8.step();
            assert_eq!(
                sp1.field_checksum(),
                sp8.field_checksum(),
                "pooled sparse ST executors diverged at step {step}"
            );
            assert_eq!(
                sp1.field_checksum(),
                dense.field_checksum(),
                "sparse ST diverged from the dense driver at step {step}"
            );
        }
    }
}

/// The same sweep for sparse MR (projective and recursive): `M` resident
/// moments plus the link table must stay bitwise-equal to the dense MR
/// driver on the shared fluid nodes at every step.
#[test]
fn sparse_mr_matches_dense_mr_fnv_sweep() {
    for dev in devices() {
        for scheme in [MrScheme::projective(), MrScheme::recursive::<D2Q9>()] {
            let geom = Geometry::walls_y_periodic_x(24, 9).with_cylinder(7.5, 4.5, 2.2);
            let mut dense: MrSim2D<D2Q9> =
                MrSim2D::new(dev.clone(), geom.clone(), scheme.clone(), 0.8);
            let mut sp1: SparseMrSim2D =
                SparseMrSim2D::new(dev.clone(), geom.clone(), scheme.clone(), 0.8)
                    .with_cpu_threads(1);
            let mut sp8: SparseMrSim2D = SparseMrSim2D::new(dev.clone(), geom, scheme, 0.8)
                .with_cpu_threads(8)
                .with_parallel_threshold(0);
            dense.init_with(shear_init);
            sp1.init_with(shear_init);
            sp8.init_with(shear_init);
            for step in 1..=7u64 {
                dense.step();
                sp1.step();
                sp8.step();
                assert_eq!(
                    sp1.field_checksum(),
                    sp8.field_checksum(),
                    "pooled sparse MR executors diverged at step {step}"
                );
                assert_eq!(
                    sp1.field_checksum(),
                    dense.field_checksum(),
                    "sparse MR diverged from the dense driver at step {step}"
                );
            }
        }
    }
}

/// The 3D sparse paths on a walled duct (the only lateral boundaries the
/// link table needs): sparse ST vs dense ST and sparse MR vs dense MR,
/// both devices, FNV-bitwise every step.
#[test]
fn sparse_3d_matches_dense_fnv_sweep() {
    let mut geom = Geometry::new(10, 6, 6, [true, false, false]);
    for z in 0..6 {
        for y in 0..6 {
            for x in 0..10 {
                if y == 0 || y == 5 || z == 0 || z == 5 {
                    geom.set(x, y, z, NodeType::Wall);
                }
            }
        }
    }
    for dev in devices() {
        let mut dst: StSim<D3Q19, _> = StSim::new(dev.clone(), geom.clone(), Bgk::new(0.8));
        let mut sst: StSparseSim<D3Q19, _> =
            StSparseSim::new(dev.clone(), geom.clone(), Bgk::new(0.8))
                .with_cpu_threads(8)
                .with_parallel_threshold(0);
        let mut dmr: MrSim3D<D3Q19> =
            MrSim3D::new(dev.clone(), geom.clone(), MrScheme::projective(), 0.8);
        let mut smr: SparseMrSim3D =
            SparseMrSim3D::new(dev.clone(), geom.clone(), MrScheme::projective(), 0.8)
                .with_cpu_threads(8)
                .with_parallel_threshold(0);
        dst.init_with(shear_init);
        sst.init_with(shear_init);
        dmr.init_with(shear_init);
        smr.init_with(shear_init);
        for step in 1..=5u64 {
            dst.step();
            sst.step();
            dmr.step();
            smr.step();
            assert_eq!(
                sst.field_checksum(),
                dst.field_checksum(),
                "3D sparse ST diverged at step {step}"
            );
            assert_eq!(
                smr.field_checksum(),
                dmr.field_checksum(),
                "3D sparse MR diverged at step {step}"
            );
        }
    }
}
