//! Resilience suite: checkpoint/restore round trips for all six drivers,
//! fault-injected recovery with bitwise-identical resumes, halo-retry
//! under transient link failures, and typed surfacing of permanent ones.
//!
//! Every equality here is `==` on `f64` bits (via FNV field checksums or
//! direct field comparison): the substrate is deterministic, so recovery
//! is required to reproduce the uninterrupted trajectory exactly, not
//! approximately.

use gpu_sim::interconnect::LinkError;
use gpu_sim::{DeviceSpec, FaultPlan};
use lbm_core::collision::Projective;
use lbm_core::geometry::{Geometry, NodeType};
use lbm_core::io::{field_checksum, CheckpointError};
use lbm_core::{Simulation, StepError};
use lbm_gpu::scheme::MrScheme;
use lbm_gpu::{AaStSim, MrSim2D, MrSim3D, SparseMrSim2D, StSim, StSparseSim};
use lbm_lattice::{D2Q9, D3Q19};
use lbm_multi::recovery::{run_with_recovery, HaloRetryPolicy, RecoveryConfig, RecoveryError};
use lbm_multi::{
    MultiAaStSim, MultiMrSim2D, MultiMrSim3D, MultiSparseMrSim, MultiSparseStSim, MultiStSim,
};
use std::sync::Arc;

fn shear_init(x: usize, y: usize, z: usize) -> (f64, [f64; 3]) {
    (
        1.0 + 0.01 * ((x + 2 * y + z) as f64 * 0.3).sin(),
        [
            0.02 * ((y + z) as f64 * 0.6).sin(),
            0.01 * (x as f64 * 0.4).cos(),
            0.0,
        ],
    )
}

/// Periodic-x duct: walls on the four lateral faces (what the 3D MR
/// drivers require).
fn duct(nx: usize, ny: usize, nz: usize) -> Geometry {
    let mut g = Geometry::new(nx, ny, nz, [true, false, false]);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                if y == 0 || y == ny - 1 || z == 0 || z == nz - 1 {
                    g.set(x, y, z, NodeType::Wall);
                }
            }
        }
    }
    g
}

fn checksum_of<S: Simulation>(s: &S) -> u64 {
    let (rho, u) = s.macro_fields();
    field_checksum(&rho, &u)
}

/// Checkpoint round-trip harness. `cont` runs `n1 + n2` steps
/// uninterrupted; `inter` checkpoints at `n1` and keeps going (taking a
/// snapshot must not perturb the run); `fresh` — a newly built identical
/// sim — restores the snapshot and finishes. All three must agree bitwise.
fn ckpt_roundtrip<S: Simulation>(mut cont: S, mut inter: S, mut fresh: S, n1: u64, n2: u64) {
    for _ in 0..n1 + n2 {
        cont.try_step().unwrap();
    }
    let want = checksum_of(&cont);

    for _ in 0..n1 {
        inter.try_step().unwrap();
    }
    let snap = inter.checkpoint();
    for _ in 0..n2 {
        inter.try_step().unwrap();
    }
    assert_eq!(checksum_of(&inter), want, "checkpointing perturbed the run");

    fresh.restore(&snap).unwrap();
    assert_eq!(fresh.steps(), n1, "restore lost the timestep");
    for _ in 0..n2 {
        fresh.try_step().unwrap();
    }
    assert_eq!(fresh.steps(), n1 + n2);
    assert_eq!(checksum_of(&fresh), want, "resume from checkpoint diverged");
}

#[test]
fn st_checkpoint_roundtrip_bitwise() {
    let geom = Geometry::walls_y_periodic_x(16, 8);
    let mk = || {
        let mut s: StSim<D2Q9, _> =
            StSim::new(DeviceSpec::v100(), geom.clone(), Projective::new(0.8)).with_cpu_threads(2);
        s.init_with(shear_init);
        s
    };
    ckpt_roundtrip(mk(), mk(), mk(), 4, 6);
}

/// The ST checkpoint carries the accumulated traffic tally, so a restored
/// run reports the same byte-exact traffic as an uninterrupted one.
#[test]
fn st_checkpoint_restores_traffic_tally() {
    let geom = Geometry::walls_y_periodic_x(16, 8);
    let mk = || {
        let mut s: StSim<D2Q9, _> =
            StSim::new(DeviceSpec::v100(), geom.clone(), Projective::new(0.8)).with_cpu_threads(2);
        s.init_with(shear_init);
        s
    };
    let mut cont = mk();
    cont.run(10);
    let mut inter = mk();
    inter.run(4);
    let snap = inter.checkpoint();
    let mut fresh = mk();
    fresh.restore(&snap).unwrap();
    fresh.run(6);
    assert_eq!(fresh.traffic(), cont.traffic(), "traffic tally diverged");
}

#[test]
fn mr2d_checkpoint_roundtrip_bitwise() {
    let geom = Geometry::walls_y_periodic_x(16, 8);
    let mk = || {
        let mut s: MrSim2D<D2Q9> = MrSim2D::new(
            DeviceSpec::v100(),
            geom.clone(),
            MrScheme::projective(),
            0.8,
        )
        .with_cpu_threads(2);
        s.init_with(shear_init);
        s
    };
    ckpt_roundtrip(mk(), mk(), mk(), 5, 7);
}

#[test]
fn mr3d_checkpoint_roundtrip_bitwise() {
    let geom = duct(8, 6, 6);
    let mk = || {
        let mut s: MrSim3D<D3Q19> = MrSim3D::new(
            DeviceSpec::mi100(),
            geom.clone(),
            MrScheme::projective(),
            0.8,
        )
        .with_cpu_threads(2);
        s.init_with(shear_init);
        s
    };
    ckpt_roundtrip(mk(), mk(), mk(), 3, 5);
}

#[test]
fn multi_st_checkpoint_roundtrip_bitwise() {
    let geom = Geometry::walls_y_periodic_x(16, 8);
    let mk = || {
        let mut s: MultiStSim<D2Q9, _> =
            MultiStSim::new(DeviceSpec::v100(), geom.clone(), Projective::new(0.8), 3)
                .with_cpu_threads(2);
        s.init_with(shear_init);
        s
    };
    ckpt_roundtrip(mk(), mk(), mk(), 4, 6);
}

#[test]
fn multi_mr2d_checkpoint_roundtrip_bitwise() {
    let geom = Geometry::walls_y_periodic_x(16, 8);
    let mk = || {
        let mut s: MultiMrSim2D<D2Q9> = MultiMrSim2D::new(
            DeviceSpec::v100(),
            geom.clone(),
            MrScheme::projective(),
            0.8,
            4,
        )
        .with_cpu_threads(2);
        s.init_with(shear_init);
        s
    };
    ckpt_roundtrip(mk(), mk(), mk(), 4, 6);
}

/// A multi-device checkpoint taken mid-run carries the overlap stats, so
/// the restored run's schedule accounting continues where it left off.
#[test]
fn multi_mr2d_checkpoint_restores_overlap_stats() {
    let geom = Geometry::walls_y_periodic_x(16, 8);
    let mk = || {
        let mut s: MultiMrSim2D<D2Q9> = MultiMrSim2D::new(
            DeviceSpec::v100(),
            geom.clone(),
            MrScheme::projective(),
            0.8,
            4,
        )
        .with_cpu_threads(2);
        s.init_with(shear_init);
        s
    };
    let mut cont = mk();
    cont.run(10);
    let mut inter = mk();
    inter.run(4);
    let snap = inter.checkpoint();
    let mut fresh = mk();
    fresh.restore(&snap).unwrap();
    assert_eq!(fresh.stats().steps, 4, "restored stats lost steps");
    fresh.run(6);
    assert_eq!(fresh.stats().steps, cont.stats().steps);
    assert_eq!(
        fresh.stats().total_s.to_bits(),
        cont.stats().total_s.to_bits(),
        "overlap timing accounting diverged"
    );
    assert_eq!(
        fresh.stats().exchange_s.to_bits(),
        cont.stats().exchange_s.to_bits()
    );
}

#[test]
fn multi_mr3d_checkpoint_roundtrip_bitwise() {
    let geom = duct(12, 8, 8);
    let mk = || {
        let mut s: MultiMrSim3D<D3Q19> = MultiMrSim3D::new(
            DeviceSpec::v100(),
            geom.clone(),
            MrScheme::projective(),
            0.8,
            3,
        )
        .with_cpu_threads(2);
        s.init_with(shear_init);
        s
    };
    ckpt_roundtrip(mk(), mk(), mk(), 3, 3);
}

/// PR 9 satellite: the in-place AA driver's parity-tagged checkpoint
/// round-trips at *odd* parity — the snapshot lands mid-AA-cycle (after
/// the stream half-step, flavor `"aa-st+odd"`), and the restored driver
/// must resume with the collide half-step, bitwise.
#[test]
fn aa_checkpoint_roundtrip_at_odd_parity() {
    let geom = Geometry::walls_y_periodic_x(16, 8);
    let mk = || {
        let mut s: AaStSim<D2Q9, _> =
            AaStSim::new(DeviceSpec::v100(), geom.clone(), Projective::new(0.8))
                .with_cpu_threads(2);
        s.init_with(shear_init);
        s
    };
    ckpt_roundtrip(mk(), mk(), mk(), 5, 7);
}

/// Sharded AA, same odd-parity contract — plus the snapshot must carry
/// every shard's ghost columns so the pending collide half-step reads the
/// same halo values the uninterrupted run saw.
#[test]
fn multi_aa_checkpoint_roundtrip_at_odd_parity() {
    let geom = Geometry::walls_y_periodic_x(16, 8);
    let mk = || {
        let mut s: MultiAaStSim<D2Q9, _> =
            MultiAaStSim::new(DeviceSpec::v100(), geom.clone(), Projective::new(0.8), 3)
                .with_cpu_threads(2);
        s.init_with(shear_init);
        s
    };
    ckpt_roundtrip(mk(), mk(), mk(), 5, 7);
}

/// The moment-twist checkpoints carry the plane parity in their flavor
/// (`"mr2d-twist+odd"` / `"mr3d-twist+odd"`): restoring at odd parity
/// must land on reversed plane order and keep stepping bitwise.
#[test]
fn mr_twist_checkpoint_roundtrip_at_odd_parity() {
    let geom = Geometry::walls_y_periodic_x(16, 8);
    let mk2 = || {
        let mut s: MrSim2D<D2Q9> = MrSim2D::new(
            DeviceSpec::v100(),
            geom.clone(),
            MrScheme::projective(),
            0.8,
        )
        .with_cpu_threads(2)
        .with_twist();
        s.init_with(shear_init);
        s
    };
    ckpt_roundtrip(mk2(), mk2(), mk2(), 5, 7);

    let geom3 = duct(8, 6, 6);
    let mk3 = || {
        let mut s: MrSim3D<D3Q19> = MrSim3D::new(
            DeviceSpec::mi100(),
            geom3.clone(),
            MrScheme::projective(),
            0.8,
        )
        .with_cpu_threads(2)
        .with_twist();
        s.init_with(shear_init);
        s
    };
    ckpt_roundtrip(mk3(), mk3(), mk3(), 3, 5);
}

/// Corrupt, truncated, and wrong-flavor snapshots are rejected with typed
/// errors instead of silently restoring garbage.
#[test]
fn restore_rejects_bad_snapshots() {
    let geom = Geometry::walls_y_periodic_x(16, 8);
    let mut st: StSim<D2Q9, _> =
        StSim::new(DeviceSpec::v100(), geom.clone(), Projective::new(0.8)).with_cpu_threads(2);
    st.run(2);
    let snap = st.checkpoint();

    let mut flipped = snap.clone();
    *flipped.last_mut().unwrap() ^= 0x01;
    assert!(matches!(
        st.restore(&flipped),
        Err(CheckpointError::ChecksumMismatch)
    ));

    assert!(matches!(
        st.restore(&snap[..snap.len() - 9]),
        Err(CheckpointError::Truncated)
    ));

    let mut mr: MrSim2D<D2Q9> = MrSim2D::new(
        DeviceSpec::v100(),
        geom.clone(),
        MrScheme::projective(),
        0.8,
    );
    assert!(matches!(
        mr.restore(&snap),
        Err(CheckpointError::WrongFlavor { .. })
    ));

    // The sim still runs after the rejected restores.
    st.restore(&snap).unwrap();
    st.run(1);
}

/// Recovery harness: `clean` runs uninterrupted; `faulted` (identically
/// built, with `plan` attached) runs under the recovery loop. The fault
/// must actually fire, trigger at least one rollback, and the recovered
/// trajectory must end bitwise-identical to the clean one.
fn assert_recovers<S: Simulation>(
    mut clean: S,
    mut faulted: S,
    plan: Arc<FaultPlan>,
    target: u64,
    every: u64,
) {
    while clean.steps() < target {
        clean.try_step().unwrap();
    }
    let want = checksum_of(&clean);

    let cfg = RecoveryConfig {
        checkpoint_every: every,
        max_rollbacks: 8,
        fault_watch: Some(plan.clone()),
        obs: None,
        ctx: None,
    };
    let stats = run_with_recovery(&mut faulted, target, &cfg).unwrap();
    assert!(plan.total_fired() >= 1, "the fault never fired");
    assert!(stats.rollbacks >= 1, "fault fired but no rollback happened");
    assert!(stats.steps_replayed >= 1);
    assert_eq!(faulted.steps(), target);
    assert_eq!(
        checksum_of(&faulted),
        want,
        "recovered run is not bitwise-identical to the fault-free run"
    );
}

#[test]
fn st_recovers_from_nan_fault() {
    let geom = Geometry::walls_y_periodic_x(16, 8);
    let mk = || {
        let mut s: StSim<D2Q9, _> =
            StSim::new(DeviceSpec::v100(), geom.clone(), Projective::new(0.8)).with_cpu_threads(2);
        s.init_with(shear_init);
        s
    };
    let mut plan = FaultPlan::new();
    // Node 69 = (x 5, y 4), direction 0: written once per step, so the
    // fault lands deterministically on the 5th step — after the step-4
    // checkpoint.
    plan.inject_nan(69, 4);
    let plan = Arc::new(plan);
    assert_recovers(mk(), mk().with_fault_plan(plan.clone()), plan, 12, 4);
}

#[test]
fn mr2d_recovers_from_nan_fault() {
    let geom = Geometry::walls_y_periodic_x(16, 8);
    let mk = || {
        let mut s: MrSim2D<D2Q9> = MrSim2D::new(
            DeviceSpec::v100(),
            geom.clone(),
            MrScheme::projective(),
            0.8,
        )
        .with_cpu_threads(2);
        s.init_with(shear_init);
        s
    };
    let mut plan = FaultPlan::new();
    // Raw index 100 = moment plane 0, slot 100; the circular shift walks
    // that slot through wall rows, so it only takes a counted write on
    // some steps — skip 2 fires it a couple of steps past the first
    // checkpoint.
    plan.inject_nan(100, 2);
    let plan = Arc::new(plan);
    assert_recovers(mk(), mk().with_fault_plan(plan.clone()), plan, 12, 4);
}

#[test]
fn mr3d_recovers_from_bitflip_fault() {
    let geom = duct(8, 6, 6);
    let mk = || {
        let mut s: MrSim3D<D3Q19> = MrSim3D::new(
            DeviceSpec::mi100(),
            geom.clone(),
            MrScheme::projective(),
            0.8,
        )
        .with_cpu_threads(2);
        s.init_with(shear_init);
        s
    };
    let mut plan = FaultPlan::new();
    // Flip the sign bit of a mid-lattice moment slot on its 4th write:
    // finite corruption that only the rollback (not a NaN scan) can undo.
    plan.inject_bitflip(400, 63, 3);
    let plan = Arc::new(plan);
    assert_recovers(mk(), mk().with_fault_plan(plan.clone()), plan, 9, 3);
}

#[test]
fn st_recovers_from_launch_abort() {
    let geom = Geometry::walls_y_periodic_x(16, 8);
    let mk = || {
        let mut s: StSim<D2Q9, _> =
            StSim::new(DeviceSpec::v100(), geom.clone(), Projective::new(0.8)).with_cpu_threads(2);
        s.init_with(shear_init);
        s
    };
    let mut plan = FaultPlan::new();
    // One bulk launch per step on this wall-bounded domain: abort the 7th.
    // The skipped kernel leaves *stale but finite* fields — only the
    // fault-watch channel can catch it.
    plan.abort_launch(6);
    let plan = Arc::new(plan);
    assert_recovers(
        mk(),
        mk().with_fault_plan(plan.clone()),
        plan.clone(),
        12,
        4,
    );
    assert_eq!(plan.aborts_fired(), 1);
}

#[test]
fn multi_st_recovers_from_nan_fault() {
    let geom = Geometry::walls_y_periodic_x(16, 8);
    let mk = || {
        let mut s: MultiStSim<D2Q9, _> =
            MultiStSim::new(DeviceSpec::v100(), geom.clone(), Projective::new(0.8), 3)
                .with_cpu_threads(2);
        s.init_with(shear_init);
        s
    };
    let mut plan = FaultPlan::new();
    plan.inject_nan(30, 8);
    let plan = Arc::new(plan);
    assert_recovers(mk(), mk().with_fault_plan(plan.clone()), plan, 12, 4);
}

#[test]
fn multi_mr2d_recovers_from_nan_fault() {
    let geom = Geometry::walls_y_periodic_x(16, 8);
    let mk = || {
        let mut s: MultiMrSim2D<D2Q9> = MultiMrSim2D::new(
            DeviceSpec::v100(),
            geom.clone(),
            MrScheme::projective(),
            0.8,
            4,
        )
        .with_cpu_threads(2);
        s.init_with(shear_init);
        s
    };
    let mut plan = FaultPlan::new();
    plan.inject_nan(40, 10);
    let plan = Arc::new(plan);
    assert_recovers(mk(), mk().with_fault_plan(plan.clone()), plan, 12, 4);
}

#[test]
fn multi_mr3d_recovers_from_nan_fault() {
    let geom = duct(12, 8, 8);
    let mk = || {
        let mut s: MultiMrSim3D<D3Q19> = MultiMrSim3D::new(
            DeviceSpec::v100(),
            geom.clone(),
            MrScheme::projective(),
            0.8,
            3,
        )
        .with_cpu_threads(2);
        s.init_with(shear_init);
        s
    };
    let mut plan = FaultPlan::new();
    // Shard-local node 110 = (x 2, y 2, z 2): an owned fluid column on
    // every shard, so the shared skip counter advances once per shard per
    // step and the fault fires deterministically on step 2.
    plan.inject_nan(110, 4);
    let plan = Arc::new(plan);
    assert_recovers(mk(), mk().with_fault_plan(plan.clone()), plan, 9, 3);
}

/// Recovery is visible in the observability layer: rollback counters and
/// a `rollback` span with from/to steps.
#[test]
fn recovery_emits_obs_counters_and_spans() {
    let hub = obs::Obs::shared();
    let geom = Geometry::walls_y_periodic_x(16, 8);
    let mut sim: StSim<D2Q9, _> =
        StSim::new(DeviceSpec::v100(), geom, Projective::new(0.8)).with_cpu_threads(2);
    sim.init_with(shear_init);
    let mut plan = FaultPlan::new();
    plan.inject_nan(69, 4);
    let plan = Arc::new(plan);
    let mut sim = sim.with_fault_plan(plan.clone());
    let cfg = RecoveryConfig {
        checkpoint_every: 4,
        max_rollbacks: 8,
        fault_watch: Some(plan),
        obs: Some(hub.clone()),
        ctx: None,
    };
    let stats = run_with_recovery(&mut sim, 12, &cfg).unwrap();
    assert!(stats.rollbacks >= 1);
    assert_eq!(
        hub.metrics.counter("recovery_rollbacks_total", &[]),
        Some(stats.rollbacks)
    );
    assert_eq!(
        hub.metrics.counter("recovery_faults_detected", &[]),
        Some(stats.faults_detected)
    );
    assert!(hub
        .metrics
        .counter("recovery_checkpoints_total", &[])
        .is_some());
    let events = hub.tracer.events();
    assert!(
        events.iter().any(|e| e.ph == 'B' && e.name == "rollback"),
        "no rollback span emitted"
    );
}

/// A transient link failure in a 4-device ring is absorbed by the
/// driver's bounded-backoff retry: same fields, byte-identical link
/// tallies, and the retries are visible in the counters.
#[test]
fn transient_link_failure_is_retried_with_identical_tallies() {
    let geom = Geometry::walls_y_periodic_x(16, 8);
    let mk = || {
        let mut s: MultiMrSim2D<D2Q9> = MultiMrSim2D::new(
            DeviceSpec::v100(),
            geom.clone(),
            MrScheme::projective(),
            0.8,
            4,
        )
        .with_cpu_threads(2);
        s.init_with(shear_init);
        s
    };
    let mut clean = mk();
    clean.run(6);

    let hub = obs::Obs::shared();
    let mut plan = FaultPlan::new();
    plan.fail_link(0, 1, 2);
    let plan = Arc::new(plan);
    let mut faulted = mk()
        .with_obs(hub.clone())
        .with_halo_retry(HaloRetryPolicy {
            max_attempts: 3,
            backoff_base_us: 1,
        })
        .with_fault_plan(plan.clone());
    faulted.run(6);

    assert_eq!(plan.link_faults_fired(), 2, "both transient faults fired");
    assert_eq!(faulted.halo_retries(), 2, "each failure retried once");
    assert_eq!(
        hub.metrics.counter("halo_retries", &[("link", "0->1")]),
        Some(2)
    );
    // Failed attempts record zero bytes, so the tallies match exactly.
    assert_eq!(
        faulted.interconnect().total_link_bytes(),
        clean.interconnect().total_link_bytes(),
        "retries double-counted link traffic"
    );
    assert_eq!(checksum_of(&faulted), checksum_of(&clean));
    assert_eq!(faulted.velocity_field(), clean.velocity_field());
}

/// A permanent link failure cannot be retried away: `try_step` surfaces a
/// typed error without advancing state, and the recovery loop gives it up
/// as unrecoverable.
#[test]
fn permanent_link_failure_surfaces_typed_error() {
    let geom = Geometry::walls_y_periodic_x(16, 8);
    let mut plan = FaultPlan::new();
    plan.fail_link_permanently(0, 1);
    let plan = Arc::new(plan);
    let mut sim: MultiMrSim2D<D2Q9> =
        MultiMrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8, 4)
            .with_cpu_threads(2)
            .with_fault_plan(plan.clone());
    sim.init_with(shear_init);

    let err = sim.try_step().unwrap_err();
    assert!(matches!(
        err,
        LinkError::Down {
            permanent: true,
            ..
        }
    ));
    assert_eq!(sim.steps(), 0, "failed step must not advance time");
    assert_eq!(sim.halo_retries(), 0, "permanent failures are not retried");

    let cfg = RecoveryConfig {
        fault_watch: Some(plan),
        ..Default::default()
    };
    match run_with_recovery(&mut sim, 4, &cfg) {
        Err(RecoveryError::Step(StepError::Link {
            permanent: true, ..
        })) => {}
        other => panic!("expected a permanent link error, got {other:?}"),
    }
}

/// When the transient-failure burst outlasts the retry budget, the driver
/// reports the link down instead of spinning forever.
#[test]
fn retry_budget_exhaustion_surfaces_transient_error() {
    let geom = Geometry::walls_y_periodic_x(16, 8);
    let mut plan = FaultPlan::new();
    plan.fail_link(0, 1, 10);
    let mut sim: MultiMrSim2D<D2Q9> =
        MultiMrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8, 4)
            .with_cpu_threads(2)
            .with_halo_retry(HaloRetryPolicy {
                max_attempts: 2,
                backoff_base_us: 1,
            })
            .with_fault_plan(Arc::new(plan));
    sim.init_with(shear_init);
    let err = sim.try_step().unwrap_err();
    assert!(matches!(
        err,
        LinkError::Down {
            permanent: false,
            ..
        }
    ));
    assert_eq!(sim.halo_retries(), 1, "one retry before giving up");
    assert_eq!(sim.steps(), 0);
}

/// A fault that re-fires on every replay exhausts the rollback budget and
/// the loop reports `GaveUp` instead of looping forever.
#[test]
fn recovery_gives_up_after_rollback_budget() {
    let geom = Geometry::walls_y_periodic_x(16, 8);
    let mut sim: StSim<D2Q9, _> =
        StSim::new(DeviceSpec::v100(), geom, Projective::new(0.8)).with_cpu_threads(2);
    sim.init_with(shear_init);
    let mut plan = FaultPlan::new();
    // Six one-shot faults on the same cell, skips 0..=5: every replay of
    // the first step fires the next one.
    for skip in 0..6 {
        plan.inject_nan(69, skip);
    }
    let plan = Arc::new(plan);
    let mut sim = sim.with_fault_plan(plan.clone());
    let cfg = RecoveryConfig {
        checkpoint_every: 4,
        max_rollbacks: 2,
        fault_watch: Some(plan),
        obs: None,
        ctx: None,
    };
    match run_with_recovery(&mut sim, 12, &cfg) {
        Err(RecoveryError::GaveUp { rollbacks, .. }) => assert_eq!(rollbacks, 2),
        other => panic!("expected GaveUp, got {other:?}"),
    }
}

/// Driver-level regression for the monitor final-sample fix: with cadence
/// 16, a 17-step run must still observe step 17 (pre-fix, a NaN born on
/// the final step escaped the monitor entirely).
#[test]
fn multi_run_flushes_final_monitor_sample() {
    let geom = Geometry::walls_y_periodic_x(16, 8);
    let mut sim: MultiStSim<D2Q9, _> =
        MultiStSim::new(DeviceSpec::v100(), geom, Projective::new(0.8), 2)
            .with_cpu_threads(2)
            .with_monitor(obs::MonitorConfig {
                cadence: 16,
                ..Default::default()
            });
    sim.init_with(shear_init);
    sim.run(17);
    let mon = sim.monitor().unwrap();
    let steps: Vec<u64> = mon.samples().iter().map(|s| s.step).collect();
    assert_eq!(steps, vec![16, 17], "final off-cadence step not sampled");
    assert!(mon.is_ok());
}

/// Obstacle-laden porous-ish 2D slab the sparse drivers compact well.
fn obstacle_2d() -> Geometry {
    Geometry::walls_y_periodic_x(20, 10).with_cylinder(8.5, 5.0, 2.4)
}

/// PR 10: the sparse drivers' parity with the dense family extends to the
/// checkpoint harness — taking a snapshot never perturbs the run, and a
/// fresh build restores bitwise (single-device ST and MR on an obstacle
/// domain, through the `Simulation` trait surface).
#[test]
fn sparse_checkpoint_roundtrip_bitwise() {
    let geom = obstacle_2d();
    let mk_st = || {
        let mut s: StSparseSim<D2Q9, _> =
            StSparseSim::new(DeviceSpec::v100(), geom.clone(), Projective::new(0.8))
                .with_cpu_threads(2);
        s.init_with(shear_init);
        s
    };
    ckpt_roundtrip(mk_st(), mk_st(), mk_st(), 4, 6);

    let mk_mr = || {
        let mut s: SparseMrSim2D = SparseMrSim2D::new(
            DeviceSpec::mi100(),
            geom.clone(),
            MrScheme::projective(),
            0.8,
        )
        .with_cpu_threads(2);
        s.init_with(shear_init);
        s
    };
    ckpt_roundtrip(mk_mr(), mk_mr(), mk_mr(), 5, 7);
}

/// Sharded sparse checkpoints (ghost columns included in every shard's
/// snapshot) round-trip bitwise too.
#[test]
fn multi_sparse_checkpoint_roundtrip_bitwise() {
    let geom = obstacle_2d();
    let mk = || {
        let mut s: MultiSparseMrSim<D2Q9> = MultiSparseMrSim::new(
            DeviceSpec::v100(),
            geom.clone(),
            MrScheme::projective(),
            0.8,
            3,
        )
        .with_cpu_threads(2);
        s.init_with(shear_init);
        s
    };
    ckpt_roundtrip(mk(), mk(), mk(), 4, 6);
}

/// PR 10 satellite: fault-injected sparse recovery. A NaN landing in the
/// compacted distribution storage after the step-4 checkpoint triggers a
/// rollback, and the recovered trajectory is bitwise-identical to the
/// fault-free run.
#[test]
fn sparse_st_recovers_from_nan_fault() {
    let geom = obstacle_2d();
    let mk = || {
        let mut s: StSparseSim<D2Q9, _> =
            StSparseSim::new(DeviceSpec::v100(), geom.clone(), Projective::new(0.8))
                .with_cpu_threads(2);
        s.init_with(shear_init);
        s
    };
    let mut plan = FaultPlan::new();
    // Compact slot 30: a fluid node's direction-0 entry, written exactly
    // once per step, so the one-shot fault fires deterministically on
    // step 5 — just past the step-4 checkpoint.
    plan.inject_nan(30, 4);
    let plan = Arc::new(plan);
    assert_recovers(mk(), mk().with_fault_plan(plan.clone()), plan, 12, 4);
}

/// Sparse MR under a sign-bit flip: finite corruption in the compacted
/// moment storage that only the fault-watch rollback (not a NaN scan) can
/// undo.
#[test]
fn sparse_mr_recovers_from_bitflip_fault() {
    let geom = obstacle_2d();
    let mk = || {
        let mut s: SparseMrSim2D = SparseMrSim2D::new(
            DeviceSpec::v100(),
            geom.clone(),
            MrScheme::projective(),
            0.8,
        )
        .with_cpu_threads(2);
        s.init_with(shear_init);
        s
    };
    let mut plan = FaultPlan::new();
    plan.inject_bitflip(50, 63, 5);
    let plan = Arc::new(plan);
    assert_recovers(mk(), mk().with_fault_plan(plan.clone()), plan, 12, 4);
}

/// Sharded sparse ST: the fault plan rides on every shard's double
/// buffers; recovery restores all shards (ghosts included) and replays to
/// the clean checksum.
#[test]
fn multi_sparse_st_recovers_from_nan_fault() {
    let geom = obstacle_2d();
    let mk = || {
        let mut s: MultiSparseStSim<D2Q9, _> =
            MultiSparseStSim::new(DeviceSpec::v100(), geom.clone(), Projective::new(0.8), 3)
                .with_cpu_threads(2);
        s.init_with(shear_init);
        s
    };
    let mut plan = FaultPlan::new();
    plan.inject_nan(20, 10);
    let plan = Arc::new(plan);
    assert_recovers(mk(), mk().with_fault_plan(plan.clone()), plan, 12, 4);
}

/// Sharded sparse MR, same contract.
#[test]
fn multi_sparse_mr_recovers_from_nan_fault() {
    let geom = obstacle_2d();
    let mk = || {
        let mut s: MultiSparseMrSim<D2Q9> = MultiSparseMrSim::new(
            DeviceSpec::v100(),
            geom.clone(),
            MrScheme::projective(),
            0.8,
            3,
        )
        .with_cpu_threads(2);
        s.init_with(shear_init);
        s
    };
    let mut plan = FaultPlan::new();
    plan.inject_nan(15, 10);
    let plan = Arc::new(plan);
    assert_recovers(mk(), mk().with_fault_plan(plan.clone()), plan, 12, 4);
}
