//! Property-style tests on the core invariants, driven by a seeded
//! xorshift generator (deterministic; the offline workspace cannot resolve
//! proptest):
//!
//! * moment ↔ distribution round-trips are lossless for regularized states,
//! * every collision operator conserves mass and momentum and relaxes Π by
//!   exactly `(1 − 1/τ)` for arbitrary admissible states,
//! * the circular-shift slot map is a bijection at every time,
//! * streaming conserves mass on periodic domains for random initial data,
//! * the FD boundary stencil is exact on affine velocity fields.

#![allow(clippy::needless_range_loop)]
use lbm_mr::kernels::MomentLattice;
use lbm_mr::lattice::equilibrium::{equilibrium, f_from_moments};
use lbm_mr::lattice::moments::Moments;
use lbm_mr::prelude::*;

/// Minimal deterministic PRNG (xorshift64*) for property sampling.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(2685821657736338717).max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }

    /// Uniform f64 in [lo, hi).
    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + u * (hi - lo)
    }

    /// Uniform usize in [lo, hi).
    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

const CASES: u64 = 64;

/// An admissible low-Mach macroscopic state.
fn macro_state(rng: &mut Rng, d: usize) -> (f64, [f64; 3]) {
    let rho = rng.f64_in(0.8, 1.2);
    let mut u = [0.0; 3];
    for a in 0..d {
        u[a] = rng.f64_in(-0.08, 0.08);
    }
    (rho, u)
}

/// A small non-equilibrium Π perturbation (canonical slots).
fn pi_perturbation(rng: &mut Rng, d: usize) -> [f64; 6] {
    let mut p = [0.0; 6];
    for k in 0..6 {
        p[k] = rng.f64_in(-5e-3, 5e-3);
    }
    if d == 2 {
        p[2] = 0.0;
        p[4] = 0.0;
        p[5] = 0.0;
    }
    p
}

/// Regularized states round-trip losslessly through moment space.
#[test]
fn moment_roundtrip_d2q9() {
    for seed in 0..CASES {
        let rng = &mut Rng::new(seed + 1);
        let (rho, u) = macro_state(rng, 2);
        let dpi = pi_perturbation(rng, 2);
        let mut pi = Moments::pi_eq(rho, u, 2);
        for k in 0..6 {
            pi[k] += dpi[k];
        }
        let mut f = vec![0.0; 9];
        f_from_moments::<D2Q9>(rho, u, &pi, &mut f);
        let m = Moments::from_f::<D2Q9>(&f);
        assert!((m.rho - rho).abs() < 1e-12);
        for a in 0..2 {
            assert!((m.u[a] - u[a]).abs() < 1e-12);
        }
        for k in [0usize, 1, 3] {
            assert!((m.pi[k] - pi[k]).abs() < 1e-12);
        }
    }
}

/// Same in 3D on D3Q19.
#[test]
fn moment_roundtrip_d3q19() {
    for seed in 0..CASES {
        let rng = &mut Rng::new(seed + 101);
        let (rho, u) = macro_state(rng, 3);
        let dpi = pi_perturbation(rng, 3);
        let mut pi = Moments::pi_eq(rho, u, 3);
        for k in 0..6 {
            pi[k] += dpi[k];
        }
        let mut f = vec![0.0; 19];
        f_from_moments::<D3Q19>(rho, u, &pi, &mut f);
        let m = Moments::from_f::<D3Q19>(&f);
        assert!((m.rho - rho).abs() < 1e-12);
        for a in 0..3 {
            assert!((m.u[a] - u[a]).abs() < 1e-12);
        }
        for k in 0..6 {
            assert!((m.pi[k] - pi[k]).abs() < 1e-12);
        }
    }
}

/// Conservation + exact Π relaxation for all three operators on random
/// admissible states.
#[test]
fn collision_invariants() {
    for seed in 0..CASES {
        let rng = &mut Rng::new(seed + 201);
        let (rho, u) = macro_state(rng, 2);
        let dpi = pi_perturbation(rng, 2);
        let tau = rng.f64_in(0.55, 1.5);
        let mut pi = Moments::pi_eq(rho, u, 2);
        for k in 0..6 {
            pi[k] += dpi[k];
        }
        let mut f0 = vec![0.0; 9];
        f_from_moments::<D2Q9>(rho, u, &pi, &mut f0);

        let ops: [(&str, Box<dyn Collision<D2Q9>>); 3] = [
            ("BGK", Box::new(Bgk::new(tau))),
            ("REG-P", Box::new(Projective::new(tau))),
            ("REG-R", Box::new(Recursive::new::<D2Q9>(tau))),
        ];
        for (name, op) in ops {
            let mut f = f0.clone();
            op.collide(&mut f);
            let before = Moments::from_f::<D2Q9>(&f0);
            let after = Moments::from_f::<D2Q9>(&f);
            assert!((before.rho - after.rho).abs() < 1e-12, "{name} mass");
            for a in 0..2 {
                assert!(
                    (before.rho * before.u[a] - after.rho * after.u[a]).abs() < 1e-12,
                    "{name} momentum"
                );
            }
            let omega = 1.0 - 1.0 / tau;
            let (bneq, aneq) = (before.pi_neq(2), after.pi_neq(2));
            for k in [0usize, 1, 3] {
                assert!(
                    (aneq[k] - omega * bneq[k]).abs() < 1e-11,
                    "{name} pi relaxation"
                );
            }
        }
    }
}

/// The circular-shift slot map stays a bijection for random sizes, shifts,
/// and times.
#[test]
fn slot_map_bijective() {
    for seed in 0..CASES {
        let rng = &mut Rng::new(seed + 301);
        let n = rng.usize_in(1, 400);
        let shift = rng.usize_in(0, 50);
        let pad = shift + rng.usize_in(0, 20);
        let t = rng.next_u64() % 1000;
        let ml = MomentLattice::new(n, 6, shift, pad);
        let mut seen = vec![false; n + pad];
        for idx in 0..n {
            let s = ml.slot(idx, t);
            assert!(s < n + pad);
            assert!(!seen[s]);
            seen[s] = true;
        }
    }
}

/// Random equilibrium fields on a periodic box: total mass and momentum
/// conserved by the full solver for any operator parameters.
#[test]
fn periodic_conservation() {
    for case in 0..16u64 {
        let rng = &mut Rng::new(case + 401);
        let seed = rng.next_u64() % 1000;
        let tau = rng.f64_in(0.6, 1.2);
        let geom = Geometry::periodic_2d(8, 6);
        let mut s: Solver<D2Q9, _> = Solver::new(geom, Projective::new(tau)).with_threads(1);
        s.init_with(|x, y, _| {
            let h = ((x * 7 + y * 13) as f64 + seed as f64) * 0.61803;
            (
                1.0 + 0.03 * h.sin(),
                [0.02 * (h * 1.7).cos(), 0.02 * (h * 2.3).sin(), 0.0],
            )
        });
        let rho0: f64 = s.density_field().iter().sum();
        let mom0: f64 = s
            .velocity_field()
            .iter()
            .zip(s.density_field())
            .map(|(u, r)| u[0] * r)
            .sum();
        s.run(8);
        let rho1: f64 = s.density_field().iter().sum();
        let mom1: f64 = s
            .velocity_field()
            .iter()
            .zip(s.density_field())
            .map(|(u, r)| u[0] * r)
            .sum();
        assert!((rho0 - rho1).abs() < 1e-10 * rho0);
        assert!((mom0 - mom1).abs() < 1e-10);
    }
}

/// The boundary stencil is exact for affine velocity fields
/// u(x, y) = a + b·x + c·y: Π^neq = −2ρc_s²τ·S with S from the exact
/// gradients.
#[test]
fn fd_boundary_exact_on_affine_fields() {
    for case in 0..CASES {
        let rng = &mut Rng::new(case + 501);
        let a = rng.f64_in(-0.02, 0.02);
        let b = rng.f64_in(-1e-3, 1e-3);
        let c = rng.f64_in(-1e-3, 1e-3);
        let tau = rng.f64_in(0.6, 1.2);
        use lbm_mr::core::boundary::boundary_node_moments;
        let ny = 10;
        let mut geom = Geometry::channel_2d(12, ny, 0.0);
        // Prescribe the affine field at the inlet nodes so tangential
        // differencing sees it.
        for y in 1..ny - 1 {
            let u = [a + c * y as f64, 0.0, 0.0];
            geom.set(0, y, 0, NodeType::Inlet(u));
        }
        let macro_at =
            |x: usize, y: usize, _z: usize| (1.0, [a + b * x as f64 + c * y as f64, 0.0, 0.0]);
        let y = 5;
        let m = boundary_node_moments::<D2Q9>(&geom, 0, y, 0, tau, &macro_at);
        // ∂x u_x = b, ∂y u_x = c exactly (stencils are second order).
        let pi_eq = Moments::pi_eq(m.rho, m.u, 2);
        let cs2 = 1.0 / 3.0;
        let want_xx = -2.0 * cs2 * tau * b;
        let want_xy = -2.0 * cs2 * tau * 0.5 * c;
        assert!(((m.pi[0] - pi_eq[0]) - want_xx).abs() < 1e-12);
        assert!(((m.pi[1] - pi_eq[1]) - want_xy).abs() < 1e-12);
    }
}

/// Equilibrium populations are strictly positive in the admissible velocity
/// envelope.
#[test]
fn equilibrium_positive() {
    for seed in 0..CASES {
        let rng = &mut Rng::new(seed + 601);
        let (rho, u) = macro_state(rng, 3);
        let mut f = vec![0.0; 19];
        equilibrium::<D3Q19>(rho, u, &mut f);
        assert!(f.iter().all(|&v| v > 0.0));
    }
}

/// Randomized cross-representation equivalence: random domain sizes, random
/// interior obstacles, random smooth initial fields, random τ — MR must
/// always match the distribution-representation reference.
#[test]
fn mr_matches_reference_on_random_scenes() {
    for case in 0..12u64 {
        let rng = &mut Rng::new(case + 701);
        let nx = rng.usize_in(2, 5) * 4; // columns of width 4
        let ny = rng.usize_in(6, 12);
        let tau = rng.f64_in(0.6, 1.1);
        let seed = rng.next_u64() % 10_000;
        let obstacle = rng.bool();
        use lbm_mr::kernels::{MrScheme, MrSim2D};
        let mut geom = Geometry::walls_y_periodic_x(nx, ny);
        if obstacle && nx >= 8 && ny >= 8 {
            geom = geom.with_cylinder((seed % (nx as u64 - 4)) as f64 + 2.0, ny as f64 / 2.0, 1.5);
        }
        let s = seed as f64;
        let init = move |x: usize, y: usize, _z: usize| {
            let h = (x as f64 * 0.7 + y as f64 * 1.3 + s).sin();
            (
                1.0 + 0.02 * h,
                [0.03 * (y as f64 * 0.8 + s).sin(), 0.02 * h, 0.0],
            )
        };
        let mut reference: Solver<D2Q9, _> =
            Solver::new(geom.clone(), Projective::new(tau)).with_threads(1);
        reference.init_with(init);
        let mut mr: MrSim2D<D2Q9> =
            MrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), tau).with_cpu_threads(1);
        mr.init_with(init);
        reference.run(6);
        mr.run(6);
        let (ur, um) = (reference.velocity_field(), mr.velocity_field());
        for (a, b) in ur.iter().zip(&um) {
            for k in 0..3 {
                assert!(
                    (a[k] - b[k]).abs() < 1e-12,
                    "representations diverged: {} vs {}",
                    a[k],
                    b[k]
                );
            }
        }
    }
}
