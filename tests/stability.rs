//! Regularization improves numerical stability — the original motivation
//! for the schemes the paper accelerates (§2.3: recursive regularization
//! "improv[es] numerical stability but add[s] computational complexity").
//!
//! We push a under-resolved periodic shear flow toward the BGK stability
//! limit (τ → 1/2 at finite velocity) and verify the ordering
//! BGK ≤ projective ≤ recursive in survived steps.

use lbm_mr::prelude::*;

/// Run a marginal double-shear-layer flow; return how many steps survive
/// (capped) before any field value becomes non-finite or the velocity
/// exceeds the lattice envelope.
fn survival<C: Collision<D2Q9>>(op: C, steps: usize) -> usize {
    let (nx, ny) = (32, 32);
    let u0 = 0.12;
    let mut s: Solver<D2Q9, _> = Solver::new(Geometry::periodic_2d(nx, ny), op).with_threads(2);
    s.init_with(|x, y, _| {
        let yn = y as f64 / ny as f64;
        // Double shear layer with a transverse perturbation.
        let ux = if yn <= 0.5 {
            u0 * ((yn - 0.25) * 60.0).tanh()
        } else {
            u0 * ((0.75 - yn) * 60.0).tanh()
        };
        let uy = 0.05 * u0 * (2.0 * std::f64::consts::PI * x as f64 / nx as f64).sin();
        (1.0, [ux, uy, 0.0])
    });
    for t in 0..steps {
        s.run(1);
        let u = s.velocity_field();
        let rho = s.density_field();
        if diagnostics::has_diverged(&rho, &u) || diagnostics::max_velocity(s.geom(), &u) > 0.57 {
            return t;
        }
    }
    steps
}

#[test]
fn regularization_extends_stability() {
    // τ close to the inviscid limit: BGK is marginal here.
    let tau = 0.51;
    let cap = 400;
    let bgk = survival(Bgk::new(tau), cap);
    let proj = survival(Projective::new(tau), cap);
    let rec = survival(Recursive::new::<D2Q9>(tau), cap);
    println!("survived steps at τ = {tau}: BGK {bgk}, REG-P {proj}, REG-R {rec}");
    assert!(
        proj >= bgk,
        "projective regularization should not be less stable than BGK ({proj} vs {bgk})"
    );
    assert!(
        rec >= proj,
        "recursive regularization should not be less stable than projective ({rec} vs {proj})"
    );
    // And the regularized schemes actually survive the whole run.
    assert_eq!(rec, cap, "recursive regularization diverged unexpectedly");
}

/// At a comfortable τ everything is stable — the flows used in the
/// performance benchmarks are far from the stability edge.
#[test]
fn all_operators_stable_at_moderate_tau() {
    let cap = 200;
    for tau in [0.6, 0.8, 1.0] {
        assert_eq!(survival(Bgk::new(tau), cap), cap, "BGK at tau={tau}");
        assert_eq!(survival(Projective::new(tau), cap), cap);
        assert_eq!(survival(Recursive::new::<D2Q9>(tau), cap), cap);
    }
}
