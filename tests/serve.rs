//! Fleet scheduler suite: the multi-tenant service's determinism contract
//! (every job checksum bitwise-equal to a solo run), checkpoint-backed
//! preemption, quotas, cancellation, starvation bounds, and deterministic
//! replay of the seeded arrival process.

use gpu_sim::FaultPlan;
use lbm_serve::{
    solo_checksum, ArrivalProcess, JobId, JobSpec, JobState, Pattern, Priority, Scenario, Serve,
    ServeConfig, SubmitError, TenantQuota,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn cfg(executors: usize) -> ServeConfig {
    ServeConfig {
        executors,
        ..Default::default()
    }
}

/// Poll `status` until the job is in `state` (or panic after 10 s —
/// generous; these lattices step in microseconds).
fn wait_for_state(serve: &Serve, id: JobId, state: JobState) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if serve.status(id).expect("known job").state == state {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "job never reached {state:?}; status = {:?}",
            serve.status(id)
        );
        std::thread::yield_now();
    }
}

/// Core contract: a mixed fleet of jobs, every one completed exactly once,
/// every checksum bitwise-equal to a solo run of the same spec.
#[test]
fn fleet_results_match_solo_runs() {
    let serve = Serve::start(cfg(3));
    let specs: Vec<JobSpec> = ArrivalProcess::new(11, 48).collect();
    let ids: Vec<JobId> = specs
        .iter()
        .map(|s| serve.submit(s.clone()).expect("admitted"))
        .collect();
    // No duplicate IDs (no duplicated jobs).
    let mut seen = std::collections::HashSet::new();
    assert!(ids.iter().all(|id| seen.insert(*id)), "duplicate job IDs");

    serve.drain();
    let mut oracle: HashMap<_, u64> = HashMap::new();
    for (spec, id) in specs.iter().zip(&ids) {
        let result = serve.wait(*id).expect("job completed");
        assert_eq!(result.steps, spec.steps, "job ran the wrong step count");
        let want = *oracle
            .entry(spec.physics_key())
            .or_insert_with(|| solo_checksum(spec));
        assert_eq!(
            result.checksum, want,
            "fleet checksum diverged from solo run for {spec:?}"
        );
    }
}

/// Satellite: evict a running MR-R job mid-flight (checkpoint → drop →
/// requeue → rebuild → restore) and require the final checksum to be
/// bitwise-equal to an uninterrupted run.
#[test]
fn evicted_mr_r_job_resumes_bitwise_identical() {
    let serve = Serve::start(ServeConfig {
        executors: 1,
        slice_steps: 4,
        ..Default::default()
    });
    // Long enough (500 slices) that the job is still mid-flight when the
    // interactive pressure lands, even with the vectorized 2D kernels.
    let batch = JobSpec {
        priority: Priority::Batch,
        pattern: Pattern::MrR,
        steps: 2000,
        ..JobSpec::shear_2d("acme", 24, 10, 2000)
    };
    let batch_id = serve.submit(batch.clone()).unwrap();
    wait_for_state(&serve, batch_id, JobState::Running);

    // Interactive pressure while the only executor is busy → eviction.
    let mut fg = JobSpec::shear_2d("nova", 16, 8, 8);
    fg.priority = Priority::Interactive;
    let fg_id = serve.submit(fg).unwrap();

    serve.wait(fg_id).expect("interactive job completed");
    let result = serve.wait(batch_id).expect("batch job completed");
    assert!(
        result.evictions >= 1,
        "the batch job was never preempted (evictions = {})",
        result.evictions
    );
    assert_eq!(
        result.checksum,
        solo_checksum(&batch),
        "resume after eviction diverged from the uninterrupted trajectory"
    );
}

/// Quota rejection is synchronous and releases on completion.
#[test]
fn quota_rejects_and_recovers() {
    let mut quotas = HashMap::new();
    quotas.insert(
        "acme".to_string(),
        TenantQuota {
            max_in_flight: 2,
            max_resident_bytes: usize::MAX,
        },
    );
    let serve = Serve::start(ServeConfig {
        executors: 1,
        quotas,
        ..Default::default()
    });
    let spec = JobSpec::shear_2d("acme", 16, 8, 12);
    let a = serve.submit(spec.clone()).unwrap();
    let b = serve.submit(spec.clone()).unwrap();
    match serve.submit(spec.clone()) {
        Err(SubmitError::QuotaExceeded { tenant, .. }) => assert_eq!(tenant, "acme"),
        other => panic!("expected quota rejection, got {other:?}"),
    }
    // Another tenant is unaffected.
    serve.submit(JobSpec::shear_2d("nova", 16, 8, 12)).unwrap();
    // Capacity returns once a job completes.
    serve.wait(a).unwrap();
    serve.wait(b).unwrap();
    serve.submit(spec).expect("quota released after completion");
    serve.drain();
}

/// Invalid specs are rejected before admission.
#[test]
fn invalid_specs_are_rejected() {
    let serve = Serve::start(cfg(1));
    let bad_tau = JobSpec {
        tau: 0.4,
        ..JobSpec::shear_2d("acme", 16, 8, 4)
    };
    assert!(matches!(
        serve.submit(bad_tau),
        Err(SubmitError::Invalid(_))
    ));
    let bad_slabs = JobSpec {
        devices: 16,
        ..JobSpec::shear_2d("acme", 16, 8, 4)
    };
    assert!(matches!(
        serve.submit(bad_slabs),
        Err(SubmitError::Invalid(_))
    ));
    assert!(matches!(
        serve.submit(JobSpec::shear_2d("acme", 16, 8, 0)),
        Err(SubmitError::Invalid(_))
    ));
}

/// Cancel while queued: synchronous, quota released immediately, waiters
/// see `Canceled`.
#[test]
fn cancel_while_queued_is_synchronous() {
    let serve = Serve::start(ServeConfig {
        executors: 1,
        slice_steps: 4,
        ..Default::default()
    });
    // Occupy the only executor.
    let mut blocker = JobSpec::shear_2d("acme", 24, 10, 400);
    blocker.priority = Priority::Batch;
    let blocker_id = serve.submit(blocker).unwrap();
    wait_for_state(&serve, blocker_id, JobState::Running);

    let victim_id = serve.submit(JobSpec::shear_2d("nova", 16, 8, 50)).unwrap();
    assert_eq!(serve.tenant_usage("nova").in_flight, 1);
    assert!(serve.cancel(victim_id), "cancel of a queued job succeeds");
    assert_eq!(
        serve.status(victim_id).unwrap().state,
        JobState::Canceled,
        "queued cancel must be synchronous"
    );
    assert_eq!(
        serve.tenant_usage("nova").in_flight,
        0,
        "cancel must release quota"
    );
    assert!(!serve.cancel(victim_id), "double cancel reports false");
    assert!(matches!(serve.wait(victim_id), Err(JobState::Canceled)));

    assert!(serve.cancel(blocker_id));
    serve.drain();
}

/// Cancel while running: takes effect at the next slice boundary; the job
/// never completes and its steps stop short of the target.
#[test]
fn cancel_while_running_stops_at_slice_boundary() {
    let serve = Serve::start(ServeConfig {
        executors: 1,
        slice_steps: 2,
        ..Default::default()
    });
    let long = JobSpec::shear_2d("acme", 24, 10, 100_000);
    let id = serve.submit(long).unwrap();
    wait_for_state(&serve, id, JobState::Running);
    assert!(serve.cancel(id));
    assert!(matches!(serve.wait(id), Err(JobState::Canceled)));
    let status = serve.status(id).unwrap();
    assert!(
        status.steps_done < status.steps_target,
        "canceled job ran to completion anyway"
    );
    assert!(serve.result(id).is_none(), "canceled jobs have no result");
}

/// Aging bounds batch wait under sustained interactive load: the batch job
/// keeps being preempted only until its effective priority ages up to the
/// interactive base, after which it runs to completion — with the correct
/// checksum despite all the evictions.
#[test]
fn aging_bounds_batch_starvation() {
    let interactive_base = 8;
    let aging = 4;
    let serve = Serve::start(ServeConfig {
        executors: 1,
        slice_steps: 4,
        interactive_base,
        aging,
        ..Default::default()
    });
    // Long enough that the interactive stream below overlaps the run
    // (the vectorized 2D kernels finish 120 steps before the first poll).
    let batch = JobSpec {
        priority: Priority::Batch,
        pattern: Pattern::MrP,
        ..JobSpec::shear_2d("acme", 20, 8, 2000)
    };
    let batch_id = serve.submit(batch.clone()).unwrap();
    wait_for_state(&serve, batch_id, JobState::Running);

    // Sustained interactive pressure: keep one interactive job queued
    // until the batch job finishes (bounded by a generous cap).
    let mut fg_ids = Vec::new();
    for _ in 0..200 {
        if serve.status(batch_id).unwrap().state == JobState::Completed {
            break;
        }
        fg_ids.push(serve.submit(JobSpec::shear_2d("nova", 12, 6, 4)).unwrap());
        std::thread::sleep(Duration::from_millis(1));
    }
    let result = serve.wait(batch_id).expect("batch job completed");
    // Eviction immunity kicks in after ceil(base/aging) passed-over
    // rounds, so evictions are bounded regardless of how long the
    // interactive stream continues.
    let bound = interactive_base.div_ceil(aging) + 1;
    assert!(
        result.evictions <= bound,
        "batch job evicted {} times; aging should cap it near {bound}",
        result.evictions
    );
    assert_eq!(result.checksum, solo_checksum(&batch));
    for id in fg_ids {
        serve.wait(id).expect("interactive job completed");
    }
}

/// Replay determinism: the same seeded arrival process served twice (on a
/// concurrent fleet each time) produces identical per-job checksums.
#[test]
fn seeded_arrivals_replay_identically() {
    let run = || -> Vec<u64> {
        let serve = Serve::start(cfg(2));
        let ids: Vec<JobId> = ArrivalProcess::new(99, 32)
            .map(|s| serve.submit(s).expect("admitted"))
            .collect();
        ids.iter()
            .map(|id| serve.wait(*id).expect("completed").checksum)
            .collect()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "replay of seed 99 diverged");
}

/// A resilient job with an injected NaN fault recovers *inside the fleet*
/// and still matches the fault-free solo checksum.
#[test]
fn resilient_job_recovers_from_injected_fault() {
    let serve = Serve::start(cfg(1));
    let mut plan = FaultPlan::new();
    plan.inject_nan(40, 6);
    let spec = JobSpec {
        resilient: true,
        fault_plan: Some(Arc::new(plan)),
        pattern: Pattern::MrP,
        ..JobSpec::shear_2d("acme", 20, 8, 48)
    };
    let id = serve.submit(spec.clone()).unwrap();
    let result = serve.wait(id).expect("resilient job completed");
    assert!(
        result.rollbacks >= 1,
        "the injected fault never triggered a rollback"
    );
    assert_eq!(
        result.checksum,
        solo_checksum(&spec),
        "recovery inside the fleet diverged from the clean trajectory"
    );
}

/// Multi-device jobs served by the fleet match their solo oracle too
/// (the sharded drivers behind the same trait object surface).
#[test]
fn multi_device_jobs_match_solo() {
    let serve = Serve::start(cfg(2));
    let spec = JobSpec {
        devices: 3,
        pattern: Pattern::MrR,
        priority: Priority::Batch,
        ..JobSpec::shear_2d("zephyr", 36, 12, 30)
    };
    let st3d = JobSpec {
        scenario: Scenario::Shear3D {
            nx: 10,
            ny: 6,
            nz: 6,
        },
        pattern: Pattern::St,
        devices: 2,
        ..JobSpec::shear_2d("orbit", 10, 6, 16)
    };
    let a = serve.submit(spec.clone()).unwrap();
    let b = serve.submit(st3d.clone()).unwrap();
    assert_eq!(serve.wait(a).unwrap().checksum, solo_checksum(&spec));
    assert_eq!(serve.wait(b).unwrap().checksum, solo_checksum(&st3d));
}

/// Satellite: a panic escaping a solver (injected in-kernel) is isolated
/// by the slice boundary's `catch_unwind`, and the balance guard leaves
/// the tracer's per-thread span stacks exactly balanced — the failed job
/// terminates as `Failed` and the fleet keeps serving.
#[test]
fn induced_panic_leaves_span_stacks_balanced() {
    let hub = obs::Obs::shared();
    let serve = Serve::start(ServeConfig {
        executors: 1,
        obs: Some(hub.clone()),
        ..Default::default()
    });
    let mut plan = FaultPlan::new();
    plan.inject_panic(30, 5);
    let doomed = JobSpec {
        fault_plan: Some(Arc::new(plan)),
        pattern: Pattern::MrP,
        ..JobSpec::shear_2d("acme", 16, 8, 24)
    };
    let doomed_id = serve.submit(doomed).unwrap();
    assert!(
        matches!(serve.wait(doomed_id), Err(JobState::Failed)),
        "the injected panic should fail the job, not the fleet"
    );

    // The executor that absorbed the panic still serves new work.
    let next = JobSpec::shear_2d("nova", 16, 8, 8);
    let next_id = serve.submit(next.clone()).unwrap();
    let result = serve.wait(next_id).expect("fleet survived the panic");
    assert_eq!(result.checksum, solo_checksum(&next));
    drop(serve);

    // Span accounting: nothing left open, and every 'B' has its 'E' (the
    // guard emits repair 'E' events for spans the unwind orphaned).
    assert_eq!(hub.tracer.open_spans_total(), 0, "leaked open spans");
    let events = hub.tracer.events();
    let begins = events.iter().filter(|e| e.ph == 'B').count();
    let ends = events.iter().filter(|e| e.ph == 'E').count();
    assert_eq!(begins, ends, "unbalanced span events after induced panic");
}

/// Satellite: checkpoint-backed eviction flushes the physics monitor's
/// final sample (a `monitor`/`flush` instant plus `monitor_mass` gauges)
/// instead of silently dropping the solver — and the flush is purely
/// observational: the resumed job still matches its solo oracle.
#[test]
fn eviction_flushes_monitor_final_sample() {
    let hub = obs::Obs::shared();
    let serve = Serve::start(ServeConfig {
        executors: 1,
        slice_steps: 4,
        obs: Some(hub.clone()),
        ..Default::default()
    });
    let batch = JobSpec {
        priority: Priority::Batch,
        pattern: Pattern::MrR,
        steps: 2000,
        // Cadence far beyond the horizon: the *only* samples this monitor
        // ever gets are forced flushes (eviction, completion).
        monitor: Some(obs::MonitorConfig {
            cadence: 1_000_000,
            ..Default::default()
        }),
        ..JobSpec::shear_2d("acme", 24, 10, 2000)
    };
    let batch_id = serve.submit(batch.clone()).unwrap();
    wait_for_state(&serve, batch_id, JobState::Running);

    let mut fg = JobSpec::shear_2d("nova", 16, 8, 8);
    fg.priority = Priority::Interactive;
    let fg_id = serve.submit(fg).unwrap();
    serve.wait(fg_id).expect("interactive job completed");
    let result = serve.wait(batch_id).expect("batch job completed");
    assert!(result.evictions >= 1, "the batch job was never preempted");
    assert_eq!(
        result.checksum,
        solo_checksum(&batch),
        "monitor flush at eviction perturbed the trajectory"
    );
    drop(serve);

    // One flush per eviction plus one at completion.
    let flushes = hub
        .tracer
        .events()
        .iter()
        .filter(|e| e.cat == "monitor" && e.name == "flush")
        .count();
    assert!(
        flushes as u64 > result.evictions,
        "expected ≥ {} monitor flushes (evictions + completion), saw {flushes}",
        result.evictions + 1
    );
    assert!(
        hub.metrics
            .gauge("monitor_mass", &[("pattern", "mr2d")])
            .is_some(),
        "eviction flush never published the monitor gauges"
    );
}

/// The SLO feedback controller reacts to interactive latency breaches by
/// shrinking the live slice/batch knobs (within bounds), emitting `tune`
/// events as it goes.
#[test]
fn slo_controller_tunes_live_knobs_on_breaches() {
    let hub = obs::Obs::shared();
    let serve = Serve::start(ServeConfig {
        executors: 1,
        slice_steps: 64,
        batch_max: 8,
        obs: Some(hub.clone()),
        slo: Some(lbm_serve::SloPolicy {
            // Unreachable target: every completion is a breach, and with
            // zero cooldown every breach tunes — fully deterministic when
            // jobs are submitted and awaited one at a time.
            interactive_p99_target_ms: 0.0,
            cooldown: 0,
            ..Default::default()
        }),
        ..Default::default()
    });
    assert_eq!(serve.tuned(), (64, 8));
    for _ in 0..5 {
        let id = serve.submit(JobSpec::shear_2d("acme", 12, 6, 4)).unwrap();
        serve.wait(id).expect("interactive job completed");
    }
    // 64→32→16→8→4→2 and 8→7→6→5→4→3.
    assert_eq!(serve.tuned(), (2, 3), "AIMD decrease sequence diverged");
    assert_eq!(
        hub.metrics
            .counter("serve_slo_tunes", &[("reason", "breach")]),
        Some(5)
    );
    let tunes = hub
        .events
        .snapshot()
        .iter()
        .filter(|e| e.kind == obs::EventKind::Tune)
        .count();
    assert_eq!(tunes, 5, "each breach should have emitted one tune event");
    // The event log replays cleanly (admits before slices, lawful
    // lifecycles) even under live retuning.
    obs::events::replay(&hub.events.snapshot()).expect("event log replays");
}

/// PR 9: the in-place patterns are first-class fleet citizens — `aa-st`
/// and `mr-twist` jobs (2D and 3D) complete with checksums bitwise-equal
/// to their solo oracles.
#[test]
fn in_place_patterns_match_solo_oracles() {
    let serve = Serve::start(cfg(2));
    let shear3d = Scenario::Shear3D {
        nx: 10,
        ny: 6,
        nz: 6,
    };
    let specs = [
        JobSpec {
            pattern: Pattern::AaSt,
            ..JobSpec::shear_2d("inplace", 20, 8, 24)
        },
        JobSpec {
            pattern: Pattern::MrTwist,
            // Odd step count: the twist lattice ends on reversed planes.
            ..JobSpec::shear_2d("inplace", 20, 8, 23)
        },
        JobSpec {
            scenario: shear3d,
            pattern: Pattern::AaSt,
            // Odd step count: restore-at-odd-parity path in play.
            ..JobSpec::shear_2d("inplace", 10, 6, 15)
        },
        JobSpec {
            scenario: shear3d,
            pattern: Pattern::MrTwist,
            ..JobSpec::shear_2d("inplace", 10, 6, 16)
        },
        // Sharded AA: the parity-aware halo protocol behind the same
        // trait object.
        JobSpec {
            pattern: Pattern::AaSt,
            devices: 3,
            ..JobSpec::shear_2d("inplace", 36, 12, 20)
        },
    ];
    let ids: Vec<JobId> = specs
        .iter()
        .map(|s| serve.submit(s.clone()).expect("admitted"))
        .collect();
    for (spec, id) in specs.iter().zip(ids) {
        assert_eq!(
            serve.wait(id).expect("completed").checksum,
            solo_checksum(spec),
            "fleet checksum diverged from solo run for {spec:?}"
        );
    }
    // The twist lattice has no sharded driver: rejected at validation.
    let twist_multi = JobSpec {
        pattern: Pattern::MrTwist,
        devices: 2,
        ..JobSpec::shear_2d("inplace", 20, 8, 8)
    };
    assert!(matches!(
        serve.submit(twist_multi),
        Err(SubmitError::Invalid(_))
    ));
}

/// PR 9 satellite: the quota ledger is byte-denominated and bills the
/// in-place patterns exactly half the lattice bytes of their two-lattice
/// counterparts — `Q·8`/node vs `2Q·8` (ST) and `M·8`/node vs `2M·8`
/// (MR), byte-exact.
#[test]
fn quota_bills_in_place_jobs_half_the_lattice_bytes() {
    let serve = Serve::start(ServeConfig {
        executors: 1,
        slice_steps: 4,
        ..Default::default()
    });
    // Occupy the only executor so the probe jobs stay queued holding
    // their admission-time charges.
    let blocker = JobSpec {
        priority: Priority::Batch,
        ..JobSpec::shear_2d("blocker", 24, 10, 100_000)
    };
    let blocker_id = serve.submit(blocker).unwrap();
    wait_for_state(&serve, blocker_id, JobState::Running);

    let nodes = 20 * 8;
    let probes = [
        (Pattern::St, "two-lat-st", nodes * 2 * 9 * 8),
        (Pattern::AaSt, "in-place-st", nodes * 9 * 8),
        (Pattern::MrP, "two-lat-mr", nodes * 2 * 6 * 8),
        (Pattern::MrTwist, "in-place-mr", nodes * 6 * 8),
    ];
    let mut ids = Vec::new();
    for (pattern, tenant, want_bytes) in probes {
        let spec = JobSpec {
            pattern,
            priority: Priority::Batch,
            ..JobSpec::shear_2d(tenant, 20, 8, 4)
        };
        assert_eq!(spec.estimated_resident_bytes(), want_bytes);
        ids.push(serve.submit(spec).unwrap());
        assert_eq!(
            serve.tenant_usage(tenant).resident_bytes,
            want_bytes,
            "queued {tenant} job holds the wrong byte charge"
        );
    }
    // Halving is exact, not approximate.
    assert_eq!(
        2 * serve.tenant_usage("in-place-st").resident_bytes,
        serve.tenant_usage("two-lat-st").resident_bytes
    );
    assert_eq!(
        2 * serve.tenant_usage("in-place-mr").resident_bytes,
        serve.tenant_usage("two-lat-mr").resident_bytes
    );

    serve.cancel(blocker_id);
    for id in ids {
        serve.wait(id).expect("probe job completed");
    }
    for (_, tenant, _) in probes {
        let usage = serve.tenant_usage(tenant);
        assert_eq!(
            (usage.in_flight, usage.resident_bytes),
            (0, 0),
            "completion must release the full byte charge for {tenant}"
        );
    }
}

/// PR 9 satellite: once the solver is built, the charge is trued up from
/// the spec estimate to the driver's actual allocation
/// (`Simulation::resident_bytes()`) — multi-device builds carry ghost
/// columns the estimate cannot see.
#[test]
fn multi_device_charge_trues_up_to_actual_allocation() {
    let serve = Serve::start(ServeConfig {
        executors: 1,
        slice_steps: 4,
        ..Default::default()
    });
    let spec = JobSpec {
        pattern: Pattern::AaSt,
        devices: 3,
        priority: Priority::Batch,
        ..JobSpec::shear_2d("truing", 36, 12, 100_000)
    };
    let est = spec.estimated_resident_bytes();
    let actual = spec.build(1).resident_bytes();
    assert!(
        actual > est,
        "sharded build should exceed the ghost-free estimate ({actual} vs {est})"
    );
    let id = serve.submit(spec).unwrap();
    // steps_done only moves after the solver is built, i.e. after the
    // true-up has landed on the ledger.
    let deadline = Instant::now() + Duration::from_secs(10);
    while serve.status(id).expect("known job").steps_done == 0 {
        assert!(Instant::now() < deadline, "job never started stepping");
        std::thread::yield_now();
    }
    assert_eq!(
        serve.tenant_usage("truing").resident_bytes,
        actual,
        "running job's charge should be the driver's actual allocation"
    );
    serve.cancel(id);
    serve.drain();
    let usage = serve.tenant_usage("truing");
    assert_eq!((usage.in_flight, usage.resident_bytes), (0, 0));
}

/// PR 10: sparse patterns are first-class fleet citizens — porous-domain
/// `sparse-st` and `sparse-mr` jobs (single- and multi-device) complete
/// with checksums bitwise-equal to their solo oracles.
#[test]
fn sparse_patterns_match_solo_oracles() {
    let serve = Serve::start(cfg(2));
    let porous = Scenario::Porous2D {
        nx: 24,
        ny: 10,
        solid_pct: 35,
    };
    let specs = [
        JobSpec {
            scenario: porous,
            pattern: Pattern::SparseSt,
            ..JobSpec::shear_2d("porous", 24, 10, 20)
        },
        JobSpec {
            scenario: porous,
            pattern: Pattern::SparseMr,
            ..JobSpec::shear_2d("porous", 24, 10, 20)
        },
        // Sharded sparse: per-tile halo exchange behind the same trait
        // object.
        JobSpec {
            scenario: porous,
            pattern: Pattern::SparseSt,
            devices: 3,
            ..JobSpec::shear_2d("porous", 24, 10, 16)
        },
        JobSpec {
            scenario: porous,
            pattern: Pattern::SparseMr,
            devices: 2,
            ..JobSpec::shear_2d("porous", 24, 10, 16)
        },
        // Sparse drivers on a dense (all-fluid interior) scenario: same
        // physics, compacted storage.
        JobSpec {
            pattern: Pattern::SparseMr,
            ..JobSpec::shear_2d("porous", 20, 8, 12)
        },
        // The D3Q19 sparse path.
        JobSpec {
            scenario: Scenario::Shear3D {
                nx: 10,
                ny: 6,
                nz: 6,
            },
            pattern: Pattern::SparseSt,
            ..JobSpec::shear_2d("porous", 10, 6, 10)
        },
    ];
    let ids: Vec<JobId> = specs
        .iter()
        .map(|s| serve.submit(s.clone()).expect("admitted"))
        .collect();
    for (spec, id) in specs.iter().zip(ids) {
        assert_eq!(
            serve.wait(id).expect("completed").checksum,
            solo_checksum(spec),
            "fleet checksum diverged from solo run for {spec:?}"
        );
    }
}

/// PR 10 satellite: bad sparse specs are rejected synchronously at submit
/// (`SubmitError::Invalid`) instead of panicking inside an executor — and
/// porous scenarios refuse dense patterns outright, so a tenant can never
/// be billed a dense bounding box for a domain that is mostly rock.
#[test]
fn bad_sparse_specs_are_rejected_synchronously() {
    let serve = Serve::start(cfg(1));
    // All interior nodes solid: the compacted domain has no fluid nodes.
    let all_rock = JobSpec {
        scenario: Scenario::Porous2D {
            nx: 16,
            ny: 8,
            solid_pct: 100,
        },
        pattern: Pattern::SparseSt,
        ..JobSpec::shear_2d("acme", 16, 8, 8)
    };
    match serve.submit(all_rock) {
        Err(SubmitError::Invalid(why)) => {
            assert!(
                why.contains("no fluid nodes"),
                "wrong rejection reason: {why}"
            );
        }
        other => panic!("all-rock spec should be Invalid, got {other:?}"),
    }
    // Dense pattern on a porous scenario: rejected at validation.
    let dense_on_rock = JobSpec {
        scenario: Scenario::Porous2D {
            nx: 16,
            ny: 8,
            solid_pct: 30,
        },
        pattern: Pattern::MrP,
        ..JobSpec::shear_2d("acme", 16, 8, 8)
    };
    match serve.submit(dense_on_rock) {
        Err(SubmitError::Invalid(why)) => {
            assert!(
                why.contains("sparse pattern"),
                "wrong rejection reason: {why}"
            );
        }
        other => panic!("dense-on-porous spec should be Invalid, got {other:?}"),
    }
    // The executor was never poisoned: the fleet still serves good work.
    let good = JobSpec {
        scenario: Scenario::Porous2D {
            nx: 16,
            ny: 8,
            solid_pct: 30,
        },
        pattern: Pattern::SparseMr,
        ..JobSpec::shear_2d("acme", 16, 8, 8)
    };
    let id = serve.submit(good.clone()).unwrap();
    assert_eq!(serve.wait(id).unwrap().checksum, solo_checksum(&good));
}

/// PR 10 satellite: sparse jobs are billed on the geometry's *fluid*
/// count, not the bounding box — the admission charge equals the roofline
/// sparse footprint exactly, and a porous sparse job is cheaper than the
/// cheapest dense pattern on the same box.
#[test]
fn quota_bills_sparse_jobs_on_fluid_count_not_box_volume() {
    use gpu_sim::roofline::{footprint_sparse_mr, footprint_sparse_st};
    use lbm_lattice::{Lattice, D2Q9};

    let serve = Serve::start(ServeConfig {
        executors: 1,
        slice_steps: 4,
        ..Default::default()
    });
    // Occupy the only executor so the probe jobs stay queued holding
    // their admission-time charges.
    let blocker = JobSpec {
        priority: Priority::Batch,
        ..JobSpec::shear_2d("blocker", 24, 10, 100_000)
    };
    let blocker_id = serve.submit(blocker).unwrap();
    wait_for_state(&serve, blocker_id, JobState::Running);

    let porous = Scenario::Porous2D {
        nx: 20,
        ny: 10,
        solid_pct: 50,
    };
    let fluid = porous.geometry().fluid_count();
    assert!(
        fluid < 20 * 10 / 2 + 20,
        "half-rock slab should have roughly half the box fluid (got {fluid})"
    );
    let probes = [
        (
            Pattern::SparseSt,
            "rock-st",
            footprint_sparse_st(fluid, D2Q9::Q),
        ),
        (
            Pattern::SparseMr,
            "rock-mr",
            footprint_sparse_mr(fluid, D2Q9::M, D2Q9::Q),
        ),
    ];
    let mut ids = Vec::new();
    for (pattern, tenant, want_bytes) in probes {
        let spec = JobSpec {
            scenario: porous,
            pattern,
            priority: Priority::Batch,
            ..JobSpec::shear_2d(tenant, 20, 10, 4)
        };
        assert_eq!(spec.estimated_resident_bytes(), want_bytes);
        ids.push(serve.submit(spec).unwrap());
        assert_eq!(
            serve.tenant_usage(tenant).resident_bytes,
            want_bytes,
            "queued {tenant} job holds the wrong byte charge"
        );
    }
    // Rock is free: the half-porosity sparse MR charge undercuts even the
    // in-place twist pattern billed on the full box (M·8 per box node).
    let twist_box = JobSpec {
        pattern: Pattern::MrTwist,
        ..JobSpec::shear_2d("rock-mr", 20, 10, 4)
    };
    assert!(
        serve.tenant_usage("rock-mr").resident_bytes < twist_box.estimated_resident_bytes(),
        "porous sparse MR should be cheaper than a dense in-place box"
    );

    serve.cancel(blocker_id);
    for id in ids {
        serve.wait(id).expect("probe job completed");
    }
    for (_, tenant, _) in probes {
        let usage = serve.tenant_usage(tenant);
        assert_eq!(
            (usage.in_flight, usage.resident_bytes),
            (0, 0),
            "completion must release the full byte charge for {tenant}"
        );
    }
}

/// PR 10 satellite (the `recharge` quota-bypass fix, end to end): a
/// multi-device sparse build trues up past the tenant's resident-byte
/// limit — the job keeps running to the correct checksum, but the breach
/// is counted (`serve_quota_breaches`) and logged as a typed
/// `quota-breach` event instead of being silently absorbed.
#[test]
fn true_up_past_quota_surfaces_breach_without_killing_the_job() {
    let hub = obs::Obs::shared();
    let spec = JobSpec {
        scenario: Scenario::Porous2D {
            nx: 24,
            ny: 10,
            solid_pct: 30,
        },
        pattern: Pattern::SparseMr,
        devices: 2,
        ..JobSpec::shear_2d("breacher", 24, 10, 6)
    };
    let est = spec.estimated_resident_bytes();
    let actual = spec.build(1).resident_bytes();
    assert!(
        actual > est,
        "sharded sparse build (ghost columns + double moment buffers) \
         should exceed the single-lattice estimate ({actual} vs {est})"
    );
    // Limit strictly between estimate and actual: admission passes on the
    // estimate, the post-build true-up breaches.
    let mut quotas = HashMap::new();
    quotas.insert(
        "breacher".to_string(),
        TenantQuota {
            max_in_flight: usize::MAX,
            max_resident_bytes: (est + actual) / 2,
        },
    );
    let serve = Serve::start(ServeConfig {
        executors: 1,
        quotas,
        obs: Some(hub.clone()),
        ..Default::default()
    });
    let id = serve
        .submit(spec.clone())
        .expect("admitted on the estimate");
    let result = serve.wait(id).expect("breaching job still completes");
    assert_eq!(
        result.checksum,
        solo_checksum(&spec),
        "the breach must not perturb the trajectory"
    );
    assert_eq!(
        hub.metrics
            .counter("serve_quota_breaches", &[("tenant", "breacher")]),
        Some(1),
        "exactly one true-up breach should be counted"
    );
    let events = hub.events.snapshot();
    let breach = events
        .iter()
        .find(|e| e.kind == obs::EventKind::QuotaBreach)
        .expect("breach event logged");
    assert_eq!(breach.tenant, "breacher");
    // The event log (with the new kind in it) still replays cleanly.
    obs::events::replay(&events).expect("event log replays");
    drop(serve);
    // Completion released the honest (actual) charge, not the estimate.
    // (usage handle gone with the serve — the zero-balance invariant is
    // covered by the release asserts in the billing tests above.)
}
