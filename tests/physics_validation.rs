//! End-to-end physics validation of the substrate kernels against analytic
//! solutions (the reference solver is validated in its own crate; here the
//! *GPU-substrate* paths are held to the same physics).

use lbm_mr::prelude::*;

/// Poiseuille flow through the MR-P kernel converges to the analytic
/// parabola.
#[test]
fn mr_poiseuille_converges() {
    let (nx, ny) = (48, 18);
    let u_max = 0.05;
    let geom = Geometry::channel_2d_poiseuille(nx, ny, u_max);
    let mut mr: MrSim2D<D2Q9> = MrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8);
    mr.run(3000);
    let u = mr.velocity_field();
    let g = mr.geom();
    let err = diagnostics::l2_velocity_error(g, &u, 0, |_x, y, _z| {
        analytic::poiseuille_profile(y, ny, u_max)
    });
    assert!(err < 0.04, "relative L2 error {err}");
}

/// The ST substrate kernel reproduces the viscous decay of a shear wave
/// (pins ν = c_s²(τ − ½) through the full GPU code path).
#[test]
fn st_substrate_shear_wave_decay() {
    let tau = 0.9;
    let ny = 34; // walls at 0 and 33, fluid rows 1..32
    let geom = Geometry::walls_y_periodic_x(8, ny);
    let mut sim: StSim<D2Q9, _> = StSim::new(DeviceSpec::v100(), geom, Bgk::new(tau));
    // A half-wave that vanishes at the no-slip planes y = 1/2, ny − 3/2:
    // u_x = sin(π (y − 1/2)/(ny − 2)).
    let k = std::f64::consts::PI / (ny as f64 - 2.0);
    let u0 = 0.02;
    sim.init_with(|_x, y, _z| (1.0, [u0 * (k * (y as f64 - 0.5)).sin(), 0.0, 0.0]));
    let amp = |s: &StSim<D2Q9, Bgk>| {
        let u = s.velocity_field();
        let g = s.geom();
        (1..ny - 1)
            .map(|y| u[g.idx(4, y, 0)][0] * (k * (y as f64 - 0.5)).sin())
            .sum::<f64>()
            * 2.0
            / (ny as f64 - 2.0)
    };
    let a0 = amp(&sim);
    let steps = 400;
    sim.run(steps);
    let a1 = amp(&sim);
    let nu = units::nu_from_tau(tau);
    let expect = (-nu * k * k * steps as f64).exp();
    let got = a1 / a0;
    assert!(
        (got - expect).abs() / expect < 0.02,
        "decay {got:.5} vs {expect:.5}"
    );
}

/// Same decay through the MR-R kernel: recursive regularization preserves
/// the hydrodynamics.
#[test]
fn mr_r_shear_wave_decay() {
    let tau = 0.9;
    let ny = 26;
    let geom = Geometry::walls_y_periodic_x(8, ny);
    let mut sim: MrSim2D<D2Q9> = MrSim2D::new(
        DeviceSpec::mi100(),
        geom,
        MrScheme::recursive::<D2Q9>(),
        tau,
    );
    let k = std::f64::consts::PI / (ny as f64 - 2.0);
    let u0 = 0.02;
    sim.init_with(|_x, y, _z| (1.0, [u0 * (k * (y as f64 - 0.5)).sin(), 0.0, 0.0]));
    let amp = |s: &MrSim2D<D2Q9>| {
        let u = s.velocity_field();
        let g = s.geom();
        (1..ny - 1)
            .map(|y| u[g.idx(4, y, 0)][0] * (k * (y as f64 - 0.5)).sin())
            .sum::<f64>()
            * 2.0
            / (ny as f64 - 2.0)
    };
    let a0 = amp(&sim);
    let steps = 300;
    sim.run(steps);
    let a1 = amp(&sim);
    let nu = units::nu_from_tau(tau);
    let expect = (-nu * k * k * steps as f64).exp();
    let got = a1 / a0;
    assert!(
        (got - expect).abs() / expect < 0.02,
        "decay {got:.5} vs {expect:.5}"
    );
}

/// 3D duct through MR-P: mass flux settles and no-slip holds at the walls.
#[test]
fn mr3d_duct_develops() {
    let geom = Geometry::channel_3d(24, 10, 10, 0.03);
    let mut mr: MrSim3D<D3Q19> =
        MrSim3D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.75);
    mr.run(400);
    let u = mr.velocity_field();
    let g = mr.geom();
    let center = u[g.idx(12, 5, 5)][0];
    assert!(center > 0.01, "centerline u_x = {center}");
    // Near-wall fluid is slower (no-slip through halfway bounce-back).
    let near_wall = u[g.idx(12, 1, 5)][0];
    assert!(near_wall < center);
    // Nothing went non-finite.
    assert!(!diagnostics::has_diverged(&mr.density_field(), &u));
}
